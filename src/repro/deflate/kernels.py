"""Fused and batched Deflate block-decode kernels (paper §4.1, Table 2).

These are drop-in replacements for the legacy symbol-at-a-time loops in
:mod:`repro.deflate.block`. Two ingredients make them fast:

* :class:`~repro.huffman.fused.FusedDecoder` tables whose entries
  pre-resolve everything the legacy loop branches on per symbol (kind,
  bits consumed, extra bits, base value, even a second literal);
* an **inlined bit buffer**: the kernel pulls the reader's cursor into
  local variables via :meth:`BitReader.export_state`, refills inline, and
  resynchronizes with :meth:`BitReader.import_state` at block end — zero
  per-symbol method calls.

Three tiers share those ingredients:

``fused``
    One loop iteration per table entry, emitting output immediately
    through :data:`_EMIT` (pre-built 1- and 2-byte ``bytes`` objects).
    The refill tops the buffer up to at least 48 bits, the worst case one
    iteration can consume, pulling up to 32 bytes per ``int.from_bytes``
    call: the call has fixed overhead, so large takes that leave a few
    hundred bits in the buffer beat byte-at-a-time reads even though
    every shift then runs on a multi-digit int.

``batched``
    The two-pass split of Sitaridi et al. ("Massively-Parallel Lossless
    Data Decompression"): **pass 1** (:func:`_batched_pass1`) only
    *resolves* symbols — it appends raw table entries and packed match
    records to growable lists, never touching the output buffer, with
    the literal lookup unrolled three deep under a 78-bit refill floor
    (3×15 lookup bits + 5 pending length extra + 15 distance lookup +
    13 pending distance extra) so the loop spends its time on lookups,
    not bookkeeping. **Pass 2** (:func:`_materialize_bytes` /
    :func:`_materialize_u16`) converts the records to NumPy arrays once,
    computes every output position with cumulative sums, scatters all
    literal bytes with vectorized fancy indexing, and replays match
    copies as ``bytearray`` slice assignments (overlapping copies via
    the repeat trick). Records are materialized in ~256 KiB batches so
    memory stays bounded on giant blocks. The split wins where literal
    emission dominates (it replaces a ``bytes``-object append per entry
    with one array pass) and roughly ties ``fused`` on match-heavy data,
    where both tiers bottom out in the same slice copies.

``legacy``
    The bounds-checked reference loops in :mod:`repro.deflate.block`.

When fewer bits than a tier's refill floor remain — only possible inside
the last few input bytes — the kernel resyncs the reader and delegates
the block remainder to a bounds-checked tail loop with exact EOF
semantics. Stored blocks and degenerate headers with no distance code
take the tail path outright.

Marker-mode (two-stage) output of the fused and batched tiers is emitted
natively as little-endian ``uint16`` in a ``bytearray`` — the exact
memory layout :func:`repro.deflate.markers.replace_markers` consumes —
so the driver hands segments over with a zero-copy ``frombuffer`` instead
of converting a Python list (the tail loop for that format is
:func:`_decode_block_two_stage_u16`). The legacy tier keeps its list
format; drivers inspect the ``marker_buffer`` attribute on the two-stage
function to seed the right buffer.

Decoder selection: :func:`resolve_decoder` maps ``None``/``"auto"`` to the
``REPRO_DECODER`` environment variable (default ``fused``);
:func:`block_decoders` returns the matching (conventional, two-stage)
function pair for the wire-through call sites.

The batched tier accumulates per-pass wall time and pass-2 output bytes
in thread-local counters; decode task bodies publish them into the
telemetry registry with :func:`publish_kernel_stats` (thread-local means
a task's drain sees exactly its own decode, even with concurrent worker
threads).
"""

from __future__ import annotations

import os
import threading
from time import perf_counter_ns

import numpy as np

from ..errors import DeflateError, UsageError
from .block import (
    decode_block_into_bytearray,
    decode_block_two_stage,
)
from .constants import (
    BLOCK_TYPE_STORED,
    DISTANCE_EXTRA_BASE,
    LENGTH_EXTRA_BASE,
)

# Imported lazily in _fused_for: repro.huffman.fused itself imports
# repro.deflate.constants, so a module-level import here would make the
# cycle unresolvable when repro.huffman.fused is imported first.
FusedDecoder = None

__all__ = [
    "DECODER_NAMES",
    "resolve_decoder",
    "block_decoders",
    "decode_block_into_bytearray_fused",
    "decode_block_two_stage_fused",
    "decode_block_into_bytearray_batched",
    "decode_block_two_stage_batched",
    "drain_kernel_stats",
    "publish_kernel_stats",
]

DECODER_NAMES = ("fused", "batched", "legacy")

#: ``bytes`` to emit per literal-entry payload: index < 256 is a single
#: byte, index 256 + (b1 | b2 << 8) is the two-byte pair ``b1, b2``
#: (see ``EMIT_PAIR_OFFSET`` in :mod:`repro.huffman.fused`).
_EMIT: list = None

#: Marker-mode variant of :data:`_EMIT`: the same payloads rendered as
#: little-endian ``uint16`` symbols (2 bytes per literal), appendable to
#: the two-stage kernels' native ``uint16`` bytearray.
_EMIT16: list = None


def _emit_table() -> list:
    global _EMIT
    if _EMIT is None:
        singles = [bytes((value,)) for value in range(256)]
        pairs = [bytes((value & 255, value >> 8)) for value in range(1 << 16)]
        _EMIT = singles + pairs
    return _EMIT


def _emit16_table() -> list:
    global _EMIT16
    if _EMIT16 is None:
        singles = [bytes((value, 0)) for value in range(256)]
        pairs = [
            bytes((value & 255, 0, value >> 8, 0)) for value in range(1 << 16)
        ]
        _EMIT16 = singles + pairs
    return _EMIT16


def resolve_decoder(name=None) -> str:
    """Resolve a decoder name, falling back to ``$REPRO_DECODER``/``fused``."""
    if name in (None, "auto"):
        name = os.environ.get("REPRO_DECODER", "fused") or "fused"
    if name not in DECODER_NAMES:
        raise UsageError(
            f"unknown decoder {name!r}; expected one of {', '.join(DECODER_NAMES)}"
        )
    return name


def block_decoders(name=None):
    """``(conventional, two_stage)`` block-decode functions for ``name``."""
    name = resolve_decoder(name)
    if name == "legacy":
        return decode_block_into_bytearray, decode_block_two_stage
    if name == "batched":
        return decode_block_into_bytearray_batched, decode_block_two_stage_batched
    return decode_block_into_bytearray_fused, decode_block_two_stage_fused


def _fused_for(header):
    fused = header.fused
    if fused is None:
        global FusedDecoder
        if FusedDecoder is None:
            from ..huffman.fused import FusedDecoder
        fused = FusedDecoder(header.literal_decoder, header.distance_decoder)
        header.fused = fused
    return fused


# -- batched-tier telemetry ---------------------------------------------------

_kernel_local = threading.local()


def _note_batched(pass1_ns: int, pass2_ns: int, copy_bytes: int) -> None:
    stats = _kernel_local.__dict__
    stats["pass1_ns"] = stats.get("pass1_ns", 0) + pass1_ns
    stats["pass2_ns"] = stats.get("pass2_ns", 0) + pass2_ns
    stats["copy_bytes"] = stats.get("copy_bytes", 0) + copy_bytes


def drain_kernel_stats() -> dict:
    """Take (and reset) this thread's accumulated batched-kernel stats.

    Returns ``{}`` when the batched tier did not run on this thread since
    the last drain, so non-batched paths pay nothing downstream.
    """
    stats = _kernel_local.__dict__
    if not stats:
        return {}
    return {
        "batched_pass1_ns": stats.pop("pass1_ns", 0),
        "batched_pass2_ns": stats.pop("pass2_ns", 0),
        "batched_copy_bytes": stats.pop("copy_bytes", 0),
    }


def publish_kernel_stats(metrics, recorder=None, chunk_id=None) -> None:
    """Drain this thread's kernel stats into a metrics registry.

    Called by decode task bodies (thread workers and the process-backend
    child entry point) right after a chunk decode, on the decoding thread.
    With an enabled trace ``recorder``, also drops a per-chunk instant so
    traces attribute pass-1 vs pass-2 time chunk by chunk.
    """
    stats = drain_kernel_stats()
    if not stats:
        return
    for name, value in stats.items():
        if value:
            metrics.counter(f"decode.{name}").increment(value)
    if recorder is not None and recorder.enabled:
        recorder.instant("chunk.kernel_passes", chunk_id=chunk_id, **stats)


# -- fused tier ---------------------------------------------------------------


def decode_block_into_bytearray_fused(reader, header, buffer: bytearray,
                                      max_size: int = None) -> None:
    """Fused conventional decode; same contract as the legacy function."""
    if header.block_type == BLOCK_TYPE_STORED or header.distance_decoder is None:
        return decode_block_into_bytearray(reader, header, buffer, max_size)
    fused = _fused_for(header)
    lit_table = fused.lit_table
    lit_mask = fused.lit_mask
    dist_table = None  # built lazily on the first match
    dist_mask = 0
    emit = _emit_table()
    from_bytes = int.from_bytes
    length_of = len

    buf, bits, byte_pos, chunk, chunk_start, pread, cache_size = reader.export_state()
    chunk_len = length_of(chunk)
    owned = True
    try:
        while True:
            if bits < 48:
                while bits < 48:
                    offset = byte_pos - chunk_start
                    if offset < 0 or offset >= chunk_len:
                        chunk = pread(byte_pos, cache_size)
                        chunk_start = byte_pos
                        chunk_len = length_of(chunk)
                        if not chunk_len:
                            break
                        offset = 0
                    take = chunk_len - offset
                    if take > 32:
                        take = 32
                    buf |= from_bytes(chunk[offset : offset + take], "little") << bits
                    bits += take * 8
                    byte_pos += take
                if bits < 48:
                    # EOF zone: resync and let the bounds-checked legacy
                    # loop finish (or fault on) the tail.
                    reader.import_state((buf, bits, byte_pos, chunk, chunk_start))
                    owned = False
                    return decode_block_into_bytearray(reader, header, buffer, max_size)

            entry = lit_table[buf & lit_mask]
            consumed = entry & 31
            buf >>= consumed
            bits -= consumed
            if entry & 32 == 0:
                buffer += emit[entry >> 6]
                continue
            length = entry >> 6
            if length == 0:  # end-of-block
                return
            if length == 1:  # INVALID_PAYLOAD: unassigned prefix
                raise DeflateError("invalid literal/length prefix")
            if length >= 512:  # extra bits pending (not baked into the slot)
                extra = length >> 9
                length = (length & 511) + (buf & ((1 << extra) - 1))
                buf >>= extra
                bits -= extra

            if dist_table is None:
                dist_table, dist_mask = fused.distance_table()
            dentry = dist_table[buf & dist_mask]
            consumed = dentry & 31
            if not consumed:
                raise DeflateError("invalid distance prefix")
            buf >>= consumed
            bits -= consumed
            distance = dentry >> 5
            extra = distance & 15
            if extra:  # pending distance extra bits
                distance = (distance >> 4) + (buf & ((1 << extra) - 1))
                buf >>= extra
                bits -= extra
            else:
                distance >>= 4

            size = length_of(buffer)
            if distance > size:
                raise DeflateError(
                    f"distance {distance} reaches before start of data ({size} known)"
                )
            start = size - distance
            if distance >= length:
                buffer += buffer[start : start + length]
            else:
                while length > 0:
                    take = length_of(buffer) - start
                    if take > length:
                        take = length
                    buffer += buffer[start : start + take]
                    length -= take
            if max_size is not None and length_of(buffer) > max_size:
                raise DeflateError("decoded output exceeds configured maximum")
    finally:
        if owned:
            reader.import_state((buf, bits, byte_pos, chunk, chunk_start))


def decode_block_two_stage_fused(reader, header, buffer: bytearray,
                                 last_marker_end: int, max_size: int = None) -> int:
    """Fused two-stage decode into a native ``uint16`` bytearray.

    Same marker semantics as the legacy list loop, but ``buffer`` holds
    little-endian ``uint16`` symbols (2 bytes each); all bookkeeping —
    ``last_marker_end``, ``max_size``, the return value — stays in symbol
    units, slices are byte-doubled.
    """
    if header.block_type == BLOCK_TYPE_STORED or header.distance_decoder is None:
        return _decode_block_two_stage_u16(
            reader, header, buffer, last_marker_end, max_size
        )
    fused = _fused_for(header)
    lit_table = fused.lit_table
    lit_mask = fused.lit_mask
    dist_table = None  # built lazily on the first match
    dist_mask = 0
    emit16 = _emit16_table()
    from_bytes = int.from_bytes
    length_of = len

    buf, bits, byte_pos, chunk, chunk_start, pread, cache_size = reader.export_state()
    chunk_len = length_of(chunk)
    owned = True
    try:
        while True:
            if bits < 48:
                while bits < 48:
                    offset = byte_pos - chunk_start
                    if offset < 0 or offset >= chunk_len:
                        chunk = pread(byte_pos, cache_size)
                        chunk_start = byte_pos
                        chunk_len = length_of(chunk)
                        if not chunk_len:
                            break
                        offset = 0
                    take = chunk_len - offset
                    if take > 32:
                        take = 32
                    buf |= from_bytes(chunk[offset : offset + take], "little") << bits
                    bits += take * 8
                    byte_pos += take
                if bits < 48:
                    reader.import_state((buf, bits, byte_pos, chunk, chunk_start))
                    owned = False
                    return _decode_block_two_stage_u16(
                        reader, header, buffer, last_marker_end, max_size
                    )

            entry = lit_table[buf & lit_mask]
            consumed = entry & 31
            buf >>= consumed
            bits -= consumed
            if entry & 32 == 0:
                buffer += emit16[entry >> 6]
                continue
            length = entry >> 6
            if length == 0:  # end-of-block
                return last_marker_end
            if length == 1:  # INVALID_PAYLOAD: unassigned prefix
                raise DeflateError("invalid literal/length prefix")
            if length >= 512:  # extra bits pending (not baked into the slot)
                extra = length >> 9
                length = (length & 511) + (buf & ((1 << extra) - 1))
                buf >>= extra
                bits -= extra

            if dist_table is None:
                dist_table, dist_mask = fused.distance_table()
            dentry = dist_table[buf & dist_mask]
            consumed = dentry & 31
            if not consumed:
                raise DeflateError("invalid distance prefix")
            buf >>= consumed
            bits -= consumed
            distance = dentry >> 5
            extra = distance & 15
            if extra:  # pending distance extra bits
                distance = (distance >> 4) + (buf & ((1 << extra) - 1))
                buf >>= extra
                bits -= extra
            else:
                distance >>= 4

            size = length_of(buffer) >> 1
            if distance > size:
                raise DeflateError(
                    f"distance {distance} reaches before start of data ({size} known)"
                )
            start = size - distance
            if start < last_marker_end:
                # Source may contain markers; destination inherits the taint.
                last_marker_end = size + length
            byte_start = start << 1
            if distance >= length:
                buffer += buffer[byte_start : byte_start + (length << 1)]
            else:
                remaining = length
                while remaining > 0:
                    take = (length_of(buffer) >> 1) - start
                    if take > remaining:
                        take = remaining
                    buffer += buffer[byte_start : byte_start + (take << 1)]
                    remaining -= take
            if max_size is not None and (length_of(buffer) >> 1) > max_size:
                raise DeflateError("decoded output exceeds configured maximum")
    finally:
        if owned:
            reader.import_state((buf, bits, byte_pos, chunk, chunk_start))


decode_block_two_stage_fused.marker_buffer = "u16"


def _decode_block_two_stage_u16(reader, header, buffer: bytearray,
                                last_marker_end: int, max_size: int = None) -> int:
    """Bounds-checked two-stage loop over the native ``uint16`` buffer.

    Mirror of :func:`repro.deflate.block.decode_block_two_stage` (per-call
    :class:`BitReader` methods with exact EOF semantics), serving as the
    EOF-zone / stored-block / degenerate-header tail for the fused and
    batched marker-mode kernels, whose buffers the list-based legacy loop
    cannot extend.
    """
    if header.block_type == BLOCK_TYPE_STORED:
        data = reader.read_bytes(header.stored_length)
        buffer += np.frombuffer(data, dtype=np.uint8).astype(np.uint16).tobytes()
        if max_size is not None and (len(buffer) >> 1) > max_size:
            raise DeflateError("decoded output exceeds configured maximum")
        return last_marker_end

    literal_table = header.literal_decoder.table
    literal_bits = header.literal_decoder.max_length
    distance_decoder = header.distance_decoder
    emit16 = _emit16_table()
    peek = reader.peek
    skip = reader.skip
    read = reader.read

    while True:
        entry = literal_table[peek(literal_bits)]
        if entry == 0:
            raise DeflateError("invalid literal/length prefix")
        skip(entry >> 9)
        symbol = entry & 0x1FF
        if symbol < 256:
            buffer += emit16[symbol]
            continue
        if symbol == 256:
            return last_marker_end
        if symbol > 285:
            raise DeflateError(f"invalid length symbol {symbol}")
        extra, base = LENGTH_EXTRA_BASE[symbol - 257]
        length = base + (read(extra) if extra else 0)
        if distance_decoder is None:
            raise DeflateError("length symbol but block declares no distance codes")
        distance_symbol = distance_decoder.decode(reader)
        if distance_symbol > 29:
            raise DeflateError(f"reserved distance symbol {distance_symbol}")
        extra, base = DISTANCE_EXTRA_BASE[distance_symbol]
        distance = base + (read(extra) if extra else 0)
        size = len(buffer) >> 1
        if distance > size:
            raise DeflateError(
                f"distance {distance} reaches before start of data ({size} known)"
            )
        start = size - distance
        if start < last_marker_end:
            last_marker_end = size + length
        byte_start = start << 1
        if distance >= length:
            buffer += buffer[byte_start : byte_start + (length << 1)]
        else:
            remaining = length
            while remaining > 0:
                take = min(remaining, (len(buffer) >> 1) - start)
                buffer += buffer[byte_start : byte_start + (take << 1)]
                remaining -= take
        if max_size is not None and (len(buffer) >> 1) > max_size:
            raise DeflateError("decoded output exceeds configured maximum")


# -- batched tier -------------------------------------------------------------

#: Pass-1 batch bound, in approximate output units (literal entries count
#: 1, match records their full length): materialize roughly every 256 Ki
#: so record lists and the pass-2 scratch stay bounded on giant blocks
#: and ``max_size`` is enforced with bounded overshoot.
_BATCH_LIMIT = 1 << 18

#: Pass-1 refill floor: 3 chained literal lookups (<= 15 bits each) plus
#: the worst-case control continuation (5 pending length-extra bits + 15
#: distance lookup + 13 pending distance-extra bits).
_REFILL_FLOOR = 78

_EOB = 0  # end-of-block entry consumed; block done
_EOF = 1  # refill starved inside the EOF zone; tail loop takes over
_FLUSH = 2  # batch limit reached; materialize and continue


def _batched_pass1(reader, fused):
    """Resolve symbols without producing output (batched pass 1).

    Returns ``(status, lits, mops)`` where ``lits`` holds raw emission
    entries (payload still packed, see :mod:`repro.huffman.fused`) and
    ``mops`` packed match records
    ``len(lits)_at_match << 26 | length << 16 | distance``. The literal
    lookup is unrolled three deep: emission entries always consume >= 1
    bit (invalid prefixes are control entries), so the chain needs no
    validity branch, and the refill floor covers the worst-case chain
    plus one full match continuation. The reader is resynchronized on
    every exit, so pass-1 segments of one block can be interleaved with
    materialization.
    """
    lit_table = fused.lit_table
    lit_mask = fused.lit_mask
    dist_table = None  # built lazily on the first match
    dist_mask = 0
    from_bytes = int.from_bytes
    length_of = len
    lits: list = []
    lits_append = lits.append
    mops: list = []
    mops_append = mops.append
    pending = 0  # approximate output units since batch start

    buf, bits, byte_pos, chunk, chunk_start, pread, cache_size = reader.export_state()
    chunk_len = length_of(chunk)
    try:
        while True:
            if bits < _REFILL_FLOOR:
                while bits < _REFILL_FLOOR:
                    offset = byte_pos - chunk_start
                    if offset < 0 or offset >= chunk_len:
                        chunk = pread(byte_pos, cache_size)
                        chunk_start = byte_pos
                        chunk_len = length_of(chunk)
                        if not chunk_len:
                            break
                        offset = 0
                    take = chunk_len - offset
                    if take > 32:
                        take = 32
                    buf |= from_bytes(chunk[offset : offset + take], "little") << bits
                    bits += take * 8
                    byte_pos += take
                if bits < _REFILL_FLOOR:
                    return _EOF, lits, mops
                if length_of(lits) + pending >= _BATCH_LIMIT:
                    return _FLUSH, lits, mops

            entry = lit_table[buf & lit_mask]
            consumed = entry & 31
            buf >>= consumed
            bits -= consumed
            if entry & 32 == 0:
                lits_append(entry)
                entry = lit_table[buf & lit_mask]
                consumed = entry & 31
                buf >>= consumed
                bits -= consumed
                if entry & 32 == 0:
                    lits_append(entry)
                    entry = lit_table[buf & lit_mask]
                    consumed = entry & 31
                    buf >>= consumed
                    bits -= consumed
                    if entry & 32 == 0:
                        lits_append(entry)
                        continue
            # Control continuation for whichever chain level broke out.
            length = entry >> 6
            if length == 0:  # end-of-block
                return _EOB, lits, mops
            if length == 1:  # INVALID_PAYLOAD: unassigned prefix
                raise DeflateError("invalid literal/length prefix")
            if length >= 512:  # extra bits pending (not baked into the slot)
                extra = length >> 9
                length = (length & 511) + (buf & ((1 << extra) - 1))
                buf >>= extra
                bits -= extra

            if dist_table is None:
                dist_table, dist_mask = fused.distance_table()
            dentry = dist_table[buf & dist_mask]
            consumed = dentry & 31
            if not consumed:
                raise DeflateError("invalid distance prefix")
            buf >>= consumed
            bits -= consumed
            distance = dentry >> 5
            extra = distance & 15
            if extra:  # pending distance extra bits
                distance = (distance >> 4) + (buf & ((1 << extra) - 1))
                buf >>= extra
                bits -= extra
            else:
                distance >>= 4

            mops_append((length_of(lits) << 26) | (length << 16) | distance)
            pending += length
    finally:
        reader.import_state((buf, bits, byte_pos, chunk, chunk_start))


def _positions(lits, mops, base):
    """Vectorize one record batch into output positions (shared pass-2 math).

    Returns ``(payload, is_pair, lit_pos, total_lit, match_pos, match_len,
    match_dist, total_match)`` — literal positions relative to the batch
    start, match positions absolute (``base`` included) since match copies
    replay against the full buffer. Validates every match distance against
    the buffer length at its own position, exactly where the scalar loops
    fail.
    """
    num_lits = len(lits)
    num_matches = len(mops)
    payload = is_pair = lit_pos = None
    match_pos = match_len = match_dist = None
    total_lit = total_match = 0

    if num_lits:
        entries = np.fromiter(lits, np.int64, count=num_lits)
        payload = entries >> 6
        is_pair = payload >= 256  # EMIT_PAIR_OFFSET
        sizes = is_pair.astype(np.int64)
        sizes += 1
        lit_cum = np.cumsum(sizes)
        total_lit = int(lit_cum[-1])
    if num_matches:
        records = np.fromiter(mops, np.int64, count=num_matches)
        match_count = records >> 26  # literal entries before this match
        match_len = (records >> 16) & 1023
        match_dist = records & 0xFFFF
        len_cum = np.cumsum(match_len)
        total_match = int(len_cum[-1])

    if num_lits:
        lit_pos = lit_cum - sizes  # offset among literal bytes
        if num_matches:
            # Literal entry i lands after every match recorded at count <= i:
            # expand each match's cumulative copy length over the literal
            # entries that follow it.
            bounds = np.empty(num_matches + 2, dtype=np.int64)
            bounds[0] = 0
            bounds[1:-1] = match_count
            bounds[-1] = num_lits
            shifts = np.empty(num_matches + 1, dtype=np.int64)
            shifts[0] = 0
            shifts[1:] = len_cum
            lit_pos = lit_pos + np.repeat(shifts, np.diff(bounds))
    if num_matches:
        if num_lits:
            lit_bytes_before = np.empty(num_lits + 1, dtype=np.int64)
            lit_bytes_before[0] = 0
            lit_bytes_before[1:] = lit_cum
            match_pos = base + lit_bytes_before[match_count] + len_cum - match_len
        else:
            match_pos = base + len_cum - match_len
        bad = match_dist > match_pos
        if bad.any():
            first = int(np.argmax(bad))
            raise DeflateError(
                f"distance {int(match_dist[first])} reaches before start of "
                f"data ({int(match_pos[first])} known)"
            )
    return (payload, is_pair, lit_pos, total_lit,
            match_pos, match_len, match_dist, total_match)


def _materialize_bytes(lits, mops, buffer: bytearray, max_size) -> int:
    """Batched pass 2, conventional mode: emit one record batch.

    Scatters all literal bytes into a NumPy scratch array (match spans
    left as holes), appends it to ``buffer`` in one copy, then replays
    match copies as ``bytearray`` slice assignments — overlapping copies
    via source-period repetition. Returns the bytes produced.
    """
    base = len(buffer)
    (payload, is_pair, lit_pos, total_lit,
     match_pos, match_len, match_dist, total_match) = _positions(lits, mops, base)
    total = total_lit + total_match
    if not total:
        return 0
    if max_size is not None and base + total > max_size:
        raise DeflateError("decoded output exceeds configured maximum")

    out = np.zeros(total, dtype=np.uint8)
    if total_lit:
        singles = ~is_pair
        out[lit_pos[singles]] = payload[singles]
        if is_pair.any():
            pair_values = payload[is_pair] - 256
            pair_pos = lit_pos[is_pair]
            out[pair_pos] = pair_values & 255
            out[pair_pos + 1] = pair_values >> 8
    buffer += out.tobytes()

    if total_match:
        for position, length, distance in zip(
            match_pos.tolist(), match_len.tolist(), match_dist.tolist()
        ):
            start = position - distance
            if distance >= length:
                buffer[position : position + length] = buffer[start : start + length]
            else:
                buffer[position : position + length] = (
                    bytes(buffer[start:position]) * (length // distance + 1)
                )[:length]
    return total


def _materialize_u16(lits, mops, buffer: bytearray, last_marker_end: int,
                     max_size) -> int:
    """Batched pass 2, marker mode: emit one record batch as ``uint16``.

    Identical structure to :func:`_materialize_bytes` but positions are in
    symbols, the scratch array is ``uint16`` (matching the buffer's native
    layout), and match copies replicate the legacy taint rule: a copy
    whose source starts before ``last_marker_end`` extends the tainted
    region to its destination end. Returns the updated marker bound.
    """
    base = len(buffer) >> 1
    (payload, is_pair, lit_pos, total_lit,
     match_pos, match_len, match_dist, total_match) = _positions(lits, mops, base)
    total = total_lit + total_match
    if not total:
        return last_marker_end
    if max_size is not None and base + total > max_size:
        raise DeflateError("decoded output exceeds configured maximum")

    out = np.zeros(total, dtype=np.uint16)
    if total_lit:
        singles = ~is_pair
        out[lit_pos[singles]] = payload[singles]
        if is_pair.any():
            pair_values = payload[is_pair] - 256
            pair_pos = lit_pos[is_pair]
            out[pair_pos] = pair_values & 255
            out[pair_pos + 1] = pair_values >> 8
    buffer += out.tobytes()

    if total_match:
        for position, length, distance in zip(
            match_pos.tolist(), match_len.tolist(), match_dist.tolist()
        ):
            start = position - distance
            if start < last_marker_end:
                last_marker_end = position + length
            byte_pos = position << 1
            byte_start = start << 1
            byte_len = length << 1
            if distance >= length:
                buffer[byte_pos : byte_pos + byte_len] = (
                    buffer[byte_start : byte_start + byte_len]
                )
            else:
                buffer[byte_pos : byte_pos + byte_len] = (
                    bytes(buffer[byte_start:byte_pos]) * (length // distance + 1)
                )[:byte_len]
    return last_marker_end


def decode_block_into_bytearray_batched(reader, header, buffer: bytearray,
                                        max_size: int = None) -> None:
    """Batched two-pass conventional decode; same contract as legacy."""
    if header.block_type == BLOCK_TYPE_STORED or header.distance_decoder is None:
        return decode_block_into_bytearray(reader, header, buffer, max_size)
    fused = _fused_for(header)
    while True:
        started = perf_counter_ns()
        status, lits, mops = _batched_pass1(reader, fused)
        resolved = perf_counter_ns()
        copied = _materialize_bytes(lits, mops, buffer, max_size)
        _note_batched(resolved - started, perf_counter_ns() - resolved, copied)
        if status == _EOB:
            return
        if status == _EOF:
            # EOF zone: the bounds-checked legacy loop finishes (or
            # faults on) the tail with exact truncation semantics.
            return decode_block_into_bytearray(reader, header, buffer, max_size)


def decode_block_two_stage_batched(reader, header, buffer: bytearray,
                                   last_marker_end: int,
                                   max_size: int = None) -> int:
    """Batched two-pass marker-mode decode into the ``uint16`` bytearray."""
    if header.block_type == BLOCK_TYPE_STORED or header.distance_decoder is None:
        return _decode_block_two_stage_u16(
            reader, header, buffer, last_marker_end, max_size
        )
    fused = _fused_for(header)
    while True:
        started = perf_counter_ns()
        status, lits, mops = _batched_pass1(reader, fused)
        resolved = perf_counter_ns()
        before = len(buffer)
        last_marker_end = _materialize_u16(
            lits, mops, buffer, last_marker_end, max_size
        )
        _note_batched(
            resolved - started, perf_counter_ns() - resolved, len(buffer) - before
        )
        if status == _EOB:
            return last_marker_end
        if status == _EOF:
            return _decode_block_two_stage_u16(
                reader, header, buffer, last_marker_end, max_size
            )


decode_block_two_stage_batched.marker_buffer = "u16"
