"""Fused Deflate block-decode kernels (paper §4.1, Table 2).

These are drop-in replacements for the legacy symbol-at-a-time loops in
:mod:`repro.deflate.block`. Two ingredients make them fast:

* :class:`~repro.huffman.fused.FusedDecoder` tables whose entries
  pre-resolve everything the legacy loop branches on per symbol (kind,
  bits consumed, extra bits, base value, even a second literal);
* an **inlined bit buffer**: the kernel pulls the reader's cursor into
  local variables via :meth:`BitReader.export_state`, refills inline, and
  resynchronizes with :meth:`BitReader.import_state` at block end — zero
  per-symbol method calls.

The refill tops the buffer up to at least 48 bits, the worst case one
iteration can consume (20 for a literal/length code incl. pending extra +
28 for a distance code incl. pending extra), pulling up to 32 bytes per
``int.from_bytes`` call: the call has fixed overhead, so large takes that
leave a few hundred bits in the buffer beat byte-at-a-time reads even
though every shift then runs on a multi-digit int. When fewer than 48
bits remain — only possible inside the last six input bytes — the kernel
resyncs the reader and delegates the block remainder to the legacy loop,
which has exact bounds-checked EOF semantics. Stored blocks and degenerate
headers with no distance code take the legacy path outright.

Literal bytes are emitted through :data:`_EMIT`, a table of pre-built
1- and 2-byte ``bytes`` objects indexed by the fused entry's payload, so a
single-literal and a two-literal entry share one branch and one
``+=``/``extend`` call.

Decoder selection: :func:`resolve_decoder` maps ``None``/``"auto"`` to the
``REPRO_DECODER`` environment variable (default ``fused``);
:func:`block_decoders` returns the matching (conventional, two-stage)
function pair for the wire-through call sites.
"""

from __future__ import annotations

import os

from ..errors import DeflateError, UsageError
from .block import (
    decode_block_into_bytearray,
    decode_block_two_stage,
)
from .constants import BLOCK_TYPE_STORED

# Imported lazily in _fused_for: repro.huffman.fused itself imports
# repro.deflate.constants, so a module-level import here would make the
# cycle unresolvable when repro.huffman.fused is imported first.
FusedDecoder = None

__all__ = [
    "DECODER_NAMES",
    "resolve_decoder",
    "block_decoders",
    "decode_block_into_bytearray_fused",
    "decode_block_two_stage_fused",
]

DECODER_NAMES = ("fused", "legacy")

#: ``bytes`` to emit per literal-entry payload: index < 256 is a single
#: byte, index 256 + (b1 | b2 << 8) is the two-byte pair ``b1, b2``
#: (see ``EMIT_PAIR_OFFSET`` in :mod:`repro.huffman.fused`).
_EMIT: list = None


def _emit_table() -> list:
    global _EMIT
    if _EMIT is None:
        singles = [bytes((value,)) for value in range(256)]
        pairs = [bytes((value & 255, value >> 8)) for value in range(1 << 16)]
        _EMIT = singles + pairs
    return _EMIT


def resolve_decoder(name=None) -> str:
    """Resolve a decoder name, falling back to ``$REPRO_DECODER``/``fused``."""
    if name in (None, "auto"):
        name = os.environ.get("REPRO_DECODER", "fused") or "fused"
    if name not in DECODER_NAMES:
        raise UsageError(
            f"unknown decoder {name!r}; expected one of {', '.join(DECODER_NAMES)}"
        )
    return name


def block_decoders(name=None):
    """``(conventional, two_stage)`` block-decode functions for ``name``."""
    if resolve_decoder(name) == "legacy":
        return decode_block_into_bytearray, decode_block_two_stage
    return decode_block_into_bytearray_fused, decode_block_two_stage_fused


def _fused_for(header):
    fused = header.fused
    if fused is None:
        global FusedDecoder
        if FusedDecoder is None:
            from ..huffman.fused import FusedDecoder
        fused = FusedDecoder(header.literal_decoder, header.distance_decoder)
        header.fused = fused
    return fused


def decode_block_into_bytearray_fused(reader, header, buffer: bytearray,
                                      max_size: int = None) -> None:
    """Fused conventional decode; same contract as the legacy function."""
    if header.block_type == BLOCK_TYPE_STORED or header.distance_decoder is None:
        return decode_block_into_bytearray(reader, header, buffer, max_size)
    fused = _fused_for(header)
    lit_table = fused.lit_table
    lit_mask = fused.lit_mask
    dist_table = None  # built lazily on the first match
    dist_mask = 0
    emit = _emit_table()
    from_bytes = int.from_bytes
    length_of = len

    buf, bits, byte_pos, chunk, chunk_start, pread, cache_size = reader.export_state()
    chunk_len = length_of(chunk)
    owned = True
    try:
        while True:
            if bits < 48:
                while bits < 48:
                    offset = byte_pos - chunk_start
                    if offset < 0 or offset >= chunk_len:
                        chunk = pread(byte_pos, cache_size)
                        chunk_start = byte_pos
                        chunk_len = length_of(chunk)
                        if not chunk_len:
                            break
                        offset = 0
                    take = chunk_len - offset
                    if take > 32:
                        take = 32
                    buf |= from_bytes(chunk[offset : offset + take], "little") << bits
                    bits += take * 8
                    byte_pos += take
                if bits < 48:
                    # EOF zone: resync and let the bounds-checked legacy
                    # loop finish (or fault on) the tail.
                    reader.import_state((buf, bits, byte_pos, chunk, chunk_start))
                    owned = False
                    return decode_block_into_bytearray(reader, header, buffer, max_size)

            entry = lit_table[buf & lit_mask]
            consumed = entry & 31
            buf >>= consumed
            bits -= consumed
            if entry & 32 == 0:
                if consumed:
                    buffer += emit[entry >> 6]
                    continue
                raise DeflateError("invalid literal/length prefix")
            length = entry >> 6
            if length == 0:  # end-of-block
                return
            if length >= 512:  # extra bits pending (not baked into the slot)
                extra = length >> 9
                length = (length & 511) + (buf & ((1 << extra) - 1))
                buf >>= extra
                bits -= extra

            if dist_table is None:
                dist_table, dist_mask = fused.distance_table()
            dentry = dist_table[buf & dist_mask]
            consumed = dentry & 31
            if not consumed:
                raise DeflateError("invalid distance prefix")
            buf >>= consumed
            bits -= consumed
            distance = dentry >> 5
            extra = distance & 15
            if extra:  # pending distance extra bits
                distance = (distance >> 4) + (buf & ((1 << extra) - 1))
                buf >>= extra
                bits -= extra
            else:
                distance >>= 4

            size = length_of(buffer)
            if distance > size:
                raise DeflateError(
                    f"distance {distance} reaches before start of data ({size} known)"
                )
            start = size - distance
            if distance >= length:
                buffer += buffer[start : start + length]
            else:
                while length > 0:
                    take = length_of(buffer) - start
                    if take > length:
                        take = length
                    buffer += buffer[start : start + take]
                    length -= take
            if max_size is not None and length_of(buffer) > max_size:
                raise DeflateError("decoded output exceeds configured maximum")
    finally:
        if owned:
            reader.import_state((buf, bits, byte_pos, chunk, chunk_start))


def decode_block_two_stage_fused(reader, header, buffer: list,
                                 last_marker_end: int, max_size: int = None) -> int:
    """Fused two-stage (marker-mode) decode; same contract as the legacy one."""
    if header.block_type == BLOCK_TYPE_STORED or header.distance_decoder is None:
        return decode_block_two_stage(reader, header, buffer, last_marker_end, max_size)
    fused = _fused_for(header)
    lit_table = fused.lit_table
    lit_mask = fused.lit_mask
    dist_table = None  # built lazily on the first match
    dist_mask = 0
    emit = _emit_table()
    extend = buffer.extend
    from_bytes = int.from_bytes
    length_of = len

    buf, bits, byte_pos, chunk, chunk_start, pread, cache_size = reader.export_state()
    chunk_len = length_of(chunk)
    owned = True
    try:
        while True:
            if bits < 48:
                while bits < 48:
                    offset = byte_pos - chunk_start
                    if offset < 0 or offset >= chunk_len:
                        chunk = pread(byte_pos, cache_size)
                        chunk_start = byte_pos
                        chunk_len = length_of(chunk)
                        if not chunk_len:
                            break
                        offset = 0
                    take = chunk_len - offset
                    if take > 32:
                        take = 32
                    buf |= from_bytes(chunk[offset : offset + take], "little") << bits
                    bits += take * 8
                    byte_pos += take
                if bits < 48:
                    reader.import_state((buf, bits, byte_pos, chunk, chunk_start))
                    owned = False
                    return decode_block_two_stage(
                        reader, header, buffer, last_marker_end, max_size
                    )

            entry = lit_table[buf & lit_mask]
            consumed = entry & 31
            buf >>= consumed
            bits -= consumed
            if entry & 32 == 0:
                if consumed:
                    extend(emit[entry >> 6])
                    continue
                raise DeflateError("invalid literal/length prefix")
            length = entry >> 6
            if length == 0:  # end-of-block
                return last_marker_end
            if length >= 512:  # extra bits pending (not baked into the slot)
                extra = length >> 9
                length = (length & 511) + (buf & ((1 << extra) - 1))
                buf >>= extra
                bits -= extra

            if dist_table is None:
                dist_table, dist_mask = fused.distance_table()
            dentry = dist_table[buf & dist_mask]
            consumed = dentry & 31
            if not consumed:
                raise DeflateError("invalid distance prefix")
            buf >>= consumed
            bits -= consumed
            distance = dentry >> 5
            extra = distance & 15
            if extra:  # pending distance extra bits
                distance = (distance >> 4) + (buf & ((1 << extra) - 1))
                buf >>= extra
                bits -= extra
            else:
                distance >>= 4

            size = length_of(buffer)
            if distance > size:
                raise DeflateError(
                    f"distance {distance} reaches before start of data ({size} known)"
                )
            start = size - distance
            if start < last_marker_end:
                # Source may contain markers; destination inherits the taint.
                last_marker_end = size + length
            if distance >= length:
                extend(buffer[start : start + length])
            else:
                remaining = length
                while remaining > 0:
                    take = length_of(buffer) - start
                    if take > remaining:
                        take = remaining
                    extend(buffer[start : start + take])
                    remaining -= take
            if max_size is not None and length_of(buffer) > max_size:
                raise DeflateError("decoded output exceeds configured maximum")
    finally:
        if owned:
            reader.import_state((buf, bits, byte_pos, chunk, chunk_start))
