"""Deflate block header parsing and payload decoding (RFC 1951).

One parser serves two callers with different tolerance:

* the **decoder** (``strict=False``) accepts every structure real
  compressors emit, including degenerate single-symbol and empty distance
  codes;
* the **block finder** (``strict=True``) applies the paper's §3.4.2 filter
  chain — every check that fails raises a :class:`DeflateError` tagged with
  the Table 1 stage name, so the finder can collect the empirical filter
  frequencies.

Payload decoding has two variants: conventional decoding into a
``bytearray`` seeded with the known window, and two-stage decoding into a
Python list of 16-bit symbols where unknown window bytes are marker values
(paper §2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import DeflateError, TruncatedError
from ..huffman import (
    CanonicalDecoder,
    CodeClassification,
    classify_code_lengths,
    fixed_distance_decoder,
    fixed_literal_decoder,
)
from ..huffman.precode import (
    MAX_PRECODE_SYMBOLS,
    PRECODE_SYMBOL_ORDER,
    classify_packed_histogram,
    packed_histogram_lut,
)
from .constants import (
    BLOCK_TYPE_DYNAMIC,
    BLOCK_TYPE_FIXED,
    BLOCK_TYPE_RESERVED,
    BLOCK_TYPE_STORED,
    DISTANCE_EXTRA_BASE,
    LENGTH_EXTRA_BASE,
    MARKER_FLAG,
    MAX_WINDOW_SIZE,
)

__all__ = [
    "BlockHeader",
    "FilterStage",
    "read_block_header",
    "decode_block_into_bytearray",
    "decode_block_two_stage",
]


class FilterStage:
    """Table 1 stage names, in check order."""

    FINAL_BLOCK = "invalid final block"
    COMPRESSION_TYPE = "invalid compression type"
    PRECODE_SIZE = "invalid precode size"
    PRECODE_INVALID = "invalid precode code"
    PRECODE_NON_OPTIMAL = "non-optimal precode code"
    PRECODE_DATA = "invalid precode-encoded data"
    DISTANCE_INVALID = "invalid distance code"
    DISTANCE_NON_OPTIMAL = "non-optimal distance code"
    LITERAL_INVALID = "invalid literal code"
    LITERAL_NON_OPTIMAL = "non-optimal literal code"

    ORDER = (
        FINAL_BLOCK,
        COMPRESSION_TYPE,
        PRECODE_SIZE,
        PRECODE_INVALID,
        PRECODE_NON_OPTIMAL,
        PRECODE_DATA,
        DISTANCE_INVALID,
        DISTANCE_NON_OPTIMAL,
        LITERAL_INVALID,
        LITERAL_NON_OPTIMAL,
    )


def _fail(stage: str, message: str, counter=None) -> None:
    if counter is not None:
        counter[stage] = counter.get(stage, 0) + 1
    error = DeflateError(message)
    error.stage = stage
    raise error


@dataclass
class BlockHeader:
    """Parsed Deflate block header, ready for payload decoding."""

    final: bool
    block_type: int
    start_bit_offset: int
    stored_length: int = 0
    literal_decoder: CanonicalDecoder = None
    distance_decoder: CanonicalDecoder = None  # None => no distance codes
    code_lengths: list = field(default=None, repr=False)
    fused: object = field(default=None, repr=False)  # FusedDecoder cache

    @property
    def is_compressed(self) -> bool:
        return self.block_type in (BLOCK_TYPE_FIXED, BLOCK_TYPE_DYNAMIC)


def read_block_header(reader, *, strict: bool = False, counter=None) -> BlockHeader:
    """Parse one block header at the reader's current bit position.

    In strict mode (block finder), the final-block bit must be 0 and every
    Huffman code must be valid *and* efficient — failures raise tagged
    :class:`DeflateError`\\ s and bump ``counter``.
    """
    start = reader.tell()
    final = reader.read(1)
    if strict and final:
        _fail(FilterStage.FINAL_BLOCK, "final-block bit set", counter)
    block_type = reader.read(2)

    if block_type == BLOCK_TYPE_STORED:
        if strict:
            # The finder has a dedicated Non-Compressed finder; the dynamic
            # trial treats a stored header as a non-candidate.
            _fail(FilterStage.COMPRESSION_TYPE, "stored block in dynamic trial", counter)
        reader.align_to_byte()
        stored_length = reader.read(16)
        negated = reader.read(16)
        if stored_length != (~negated & 0xFFFF):
            raise DeflateError(
                f"stored block length {stored_length:#06x} does not match "
                f"one's complement {negated:#06x}"
            )
        return BlockHeader(bool(final), block_type, start, stored_length=stored_length)

    if block_type == BLOCK_TYPE_FIXED:
        if strict:
            # Paper §3.4.3: the finder does not look for Fixed Blocks.
            _fail(FilterStage.COMPRESSION_TYPE, "fixed block in dynamic trial", counter)
        return BlockHeader(
            bool(final),
            block_type,
            start,
            literal_decoder=fixed_literal_decoder(),
            distance_decoder=fixed_distance_decoder(),
        )

    if block_type == BLOCK_TYPE_RESERVED:
        _fail(FilterStage.COMPRESSION_TYPE, "reserved block type 11", counter)

    return _read_dynamic_header(reader, final, start, strict, counter)


def _read_dynamic_header(reader, final, start, strict, counter) -> BlockHeader:
    hlit = reader.read(5)
    if hlit >= 30:
        # 287 literal symbols is the alphabet maximum (Table 1 row 3).
        _fail(FilterStage.PRECODE_SIZE, f"HLIT {hlit} implies >286 literal codes", counter)
    hdist = reader.read(5)
    hclen = reader.read(4)
    num_literals = hlit + 257
    num_distances = hdist + 1
    num_precode = hclen + 4

    # Bit-parallel histogram over the precode triplets (paper §3.4.2).
    triplets = reader.read(num_precode * 3)
    histogram = packed_histogram_lut(triplets, num_precode)
    classification = classify_packed_histogram(histogram)
    single_symbol = histogram == (1 << 5)  # one symbol of length 1
    if classification is CodeClassification.INVALID:
        _fail(FilterStage.PRECODE_INVALID, "over-subscribed precode", counter)
    if classification is CodeClassification.EMPTY:
        _fail(FilterStage.PRECODE_INVALID, "empty precode", counter)
    if classification is CodeClassification.NON_OPTIMAL and not single_symbol:
        _fail(FilterStage.PRECODE_NON_OPTIMAL, "inefficient precode", counter)

    precode_lengths = [0] * MAX_PRECODE_SYMBOLS
    for index in range(num_precode):
        precode_lengths[PRECODE_SYMBOL_ORDER[index]] = (triplets >> (3 * index)) & 0b111
    precode = CanonicalDecoder(precode_lengths, allow_incomplete=single_symbol)

    # Decode HLIT+257+HDIST+1 code lengths; repeats may cross the boundary.
    total = num_literals + num_distances
    code_lengths = []
    try:
        while len(code_lengths) < total:
            symbol = precode.decode(reader)
            if symbol < 16:
                code_lengths.append(symbol)
            elif symbol == 16:
                if not code_lengths:
                    _fail(FilterStage.PRECODE_DATA, "repeat with no previous length", counter)
                code_lengths.extend([code_lengths[-1]] * (3 + reader.read(2)))
            elif symbol == 17:
                code_lengths.extend([0] * (3 + reader.read(3)))
            else:  # 18
                code_lengths.extend([0] * (11 + reader.read(7)))
    except (DeflateError, TruncatedError) as error:
        if getattr(error, "stage", None):
            raise
        _fail(FilterStage.PRECODE_DATA, f"precode-encoded data: {error}", counter)
    if len(code_lengths) > total:
        _fail(FilterStage.PRECODE_DATA, "code-length repeat overruns alphabets", counter)
    literal_lengths = code_lengths[:num_literals]
    distance_lengths = code_lengths[num_literals:]

    # Paper order: distance code is classified before the literal code, and
    # decoder tables are only built after both pass (§3.4.2).
    distance_class = classify_code_lengths(distance_lengths)
    distance_used = sum(1 for length in distance_lengths if length)
    if distance_class is CodeClassification.INVALID:
        _fail(FilterStage.DISTANCE_INVALID, "over-subscribed distance code", counter)
    if distance_class is CodeClassification.NON_OPTIMAL:
        # RFC 1951: one distance code of one bit is legal (one unused leaf).
        degenerate = distance_used == 1 and max(distance_lengths) == 1
        if strict or not degenerate:
            if strict and not degenerate:
                _fail(FilterStage.DISTANCE_NON_OPTIMAL, "inefficient distance code", counter)
            elif not degenerate:
                _fail(FilterStage.DISTANCE_INVALID, "incomplete distance code", counter)

    literal_class = classify_code_lengths(literal_lengths)
    literal_used = sum(1 for length in literal_lengths if length)
    if literal_class in (CodeClassification.INVALID, CodeClassification.EMPTY):
        _fail(FilterStage.LITERAL_INVALID, "invalid literal code", counter)
    if literal_class is CodeClassification.NON_OPTIMAL:
        if strict or literal_used != 1:
            stage = (
                FilterStage.LITERAL_NON_OPTIMAL if strict else FilterStage.LITERAL_INVALID
            )
            _fail(stage, "inefficient literal code", counter)

    literal_decoder = CanonicalDecoder(
        literal_lengths, allow_incomplete=literal_used == 1
    )
    distance_decoder = None
    if distance_used:
        distance_decoder = CanonicalDecoder(distance_lengths, allow_incomplete=True)

    return BlockHeader(
        bool(final),
        BLOCK_TYPE_DYNAMIC,
        start,
        literal_decoder=literal_decoder,
        distance_decoder=distance_decoder,
        code_lengths=code_lengths,
    )


def decode_block_into_bytearray(reader, header: BlockHeader, buffer: bytearray,
                                max_size: int = None) -> None:
    """Conventional decode of one block's payload, appending to ``buffer``.

    ``buffer`` must already contain the preceding window bytes (up to
    32 KiB); backward references are resolved against it directly.
    ``max_size`` (total buffer length) guards against runaway output from
    block-finder false positives.
    """
    if header.block_type == BLOCK_TYPE_STORED:
        buffer += reader.read_bytes(header.stored_length)
        if max_size is not None and len(buffer) > max_size:
            raise DeflateError("decoded output exceeds configured maximum")
        return

    literal_table = header.literal_decoder.table
    literal_bits = header.literal_decoder.max_length
    distance_decoder = header.distance_decoder
    peek = reader.peek
    skip = reader.skip
    read = reader.read
    append = buffer.append

    while True:
        entry = literal_table[peek(literal_bits)]
        if entry == 0:
            raise DeflateError("invalid literal/length prefix")
        skip(entry >> 9)
        symbol = entry & 0x1FF
        if symbol < 256:
            append(symbol)
            continue
        if symbol == 256:
            return
        if symbol > 285:
            raise DeflateError(f"invalid length symbol {symbol}")
        extra, base = LENGTH_EXTRA_BASE[symbol - 257]
        length = base + (read(extra) if extra else 0)
        if distance_decoder is None:
            raise DeflateError("length symbol but block declares no distance codes")
        distance_symbol = distance_decoder.decode(reader)
        if distance_symbol > 29:
            raise DeflateError(f"reserved distance symbol {distance_symbol}")
        extra, base = DISTANCE_EXTRA_BASE[distance_symbol]
        distance = base + (read(extra) if extra else 0)
        size = len(buffer)
        if distance > size:
            raise DeflateError(
                f"distance {distance} reaches before start of data ({size} known)"
            )
        start = size - distance
        if distance >= length:
            buffer += buffer[start : start + length]
        else:
            while length > 0:
                take = min(length, len(buffer) - start)
                buffer += buffer[start : start + take]
                length -= take
        if max_size is not None and len(buffer) > max_size:
            raise DeflateError("decoded output exceeds configured maximum")


def decode_block_two_stage(reader, header: BlockHeader, buffer: list,
                           last_marker_end: int, max_size: int = None) -> int:
    """Two-stage decode of one block into a list of 16-bit symbols.

    ``buffer`` holds ints: 0–255 are resolved bytes, ``MARKER_FLAG | w``
    marks the unknown window byte at offset ``w``. The caller seeds the
    first :data:`MAX_WINDOW_SIZE` entries with markers.

    ``last_marker_end`` is the end (exclusive, buffer index) of the last
    region known to possibly contain markers; the conservative rule is:
    copying from a region that overlaps ``[0, last_marker_end)`` may
    propagate markers into the destination. Returns the updated value so the
    driver can fall back to conventional decoding once the trailing window
    is marker-free (paper §3.3).
    """
    if header.block_type == BLOCK_TYPE_STORED:
        buffer.extend(reader.read_bytes(header.stored_length))
        if max_size is not None and len(buffer) > max_size:
            raise DeflateError("decoded output exceeds configured maximum")
        return last_marker_end

    literal_table = header.literal_decoder.table
    literal_bits = header.literal_decoder.max_length
    distance_decoder = header.distance_decoder
    peek = reader.peek
    skip = reader.skip
    read = reader.read
    append = buffer.append

    while True:
        entry = literal_table[peek(literal_bits)]
        if entry == 0:
            raise DeflateError("invalid literal/length prefix")
        skip(entry >> 9)
        symbol = entry & 0x1FF
        if symbol < 256:
            append(symbol)
            continue
        if symbol == 256:
            return last_marker_end
        if symbol > 285:
            raise DeflateError(f"invalid length symbol {symbol}")
        extra, base = LENGTH_EXTRA_BASE[symbol - 257]
        length = base + (read(extra) if extra else 0)
        if distance_decoder is None:
            raise DeflateError("length symbol but block declares no distance codes")
        distance_symbol = distance_decoder.decode(reader)
        if distance_symbol > 29:
            raise DeflateError(f"reserved distance symbol {distance_symbol}")
        extra, base = DISTANCE_EXTRA_BASE[distance_symbol]
        distance = base + (read(extra) if extra else 0)
        size = len(buffer)
        if distance > size:
            raise DeflateError(
                f"distance {distance} reaches before start of data ({size} known)"
            )
        start = size - distance
        if start < last_marker_end:
            # Source may contain markers; destination inherits that taint.
            last_marker_end = size + length
        if distance >= length:
            buffer.extend(buffer[start : start + length])
        else:
            extend = buffer.extend
            remaining = length
            while remaining > 0:
                take = min(remaining, len(buffer) - start)
                extend(buffer[start : start + take])
                remaining -= take
        if max_size is not None and len(buffer) > max_size:
            raise DeflateError("decoded output exceeds configured maximum")
