"""Deflate (RFC 1951): decoder, two-stage marker decoder, and compressor."""

from .block import (
    BlockHeader,
    FilterStage,
    decode_block_into_bytearray,
    decode_block_two_stage,
    read_block_header,
)
from .constants import (
    BLOCK_TYPE_DYNAMIC,
    BLOCK_TYPE_FIXED,
    BLOCK_TYPE_RESERVED,
    BLOCK_TYPE_STORED,
    MARKER_FLAG,
    MAX_MATCH_LENGTH,
    MAX_WINDOW_SIZE,
    MIN_MATCH_LENGTH,
)
from .inflate import BlockBoundary, InflateResult, TwoStageStreamDecoder, inflate
from .kernels import (
    DECODER_NAMES,
    block_decoders,
    decode_block_into_bytearray_batched,
    decode_block_into_bytearray_fused,
    decode_block_two_stage_batched,
    decode_block_two_stage_fused,
    drain_kernel_stats,
    publish_kernel_stats,
    resolve_decoder,
)
from .markers import (
    ChunkPayload,
    pad_window,
    replace_markers,
    seed_marker_window,
    seed_marker_window_u16,
    segment_has_markers,
)

__all__ = [
    "BlockHeader",
    "FilterStage",
    "decode_block_into_bytearray",
    "decode_block_two_stage",
    "read_block_header",
    "BLOCK_TYPE_DYNAMIC",
    "BLOCK_TYPE_FIXED",
    "BLOCK_TYPE_RESERVED",
    "BLOCK_TYPE_STORED",
    "MARKER_FLAG",
    "MAX_MATCH_LENGTH",
    "MAX_WINDOW_SIZE",
    "MIN_MATCH_LENGTH",
    "BlockBoundary",
    "InflateResult",
    "TwoStageStreamDecoder",
    "inflate",
    "DECODER_NAMES",
    "block_decoders",
    "decode_block_into_bytearray_batched",
    "decode_block_into_bytearray_fused",
    "decode_block_two_stage_batched",
    "decode_block_two_stage_fused",
    "drain_kernel_stats",
    "publish_kernel_stats",
    "resolve_decoder",
    "ChunkPayload",
    "pad_window",
    "replace_markers",
    "seed_marker_window",
    "seed_marker_window_u16",
    "segment_has_markers",
    "compress",
    "DeflateCompressor",
]


def __getattr__(name):
    if name in ("compress", "DeflateCompressor", "CompressorOptions"):
        from . import compress as _compress_module

        return getattr(_compress_module, name)
    raise AttributeError(f"module 'repro.deflate' has no attribute {name!r}")
