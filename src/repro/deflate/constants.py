"""Deflate stream constants (RFC 1951 §3.2.5–3.2.7)."""

from __future__ import annotations

__all__ = [
    "BLOCK_TYPE_STORED",
    "BLOCK_TYPE_FIXED",
    "BLOCK_TYPE_DYNAMIC",
    "BLOCK_TYPE_RESERVED",
    "END_OF_BLOCK",
    "MAX_LITERAL_SYMBOL",
    "MAX_DISTANCE_SYMBOL",
    "MAX_WINDOW_SIZE",
    "MAX_MATCH_LENGTH",
    "MIN_MATCH_LENGTH",
    "LENGTH_EXTRA_BASE",
    "DISTANCE_EXTRA_BASE",
    "MARKER_FLAG",
    "length_to_symbol",
    "distance_to_symbol",
]

BLOCK_TYPE_STORED = 0
BLOCK_TYPE_FIXED = 1
BLOCK_TYPE_DYNAMIC = 2
BLOCK_TYPE_RESERVED = 3

END_OF_BLOCK = 256
MAX_LITERAL_SYMBOL = 285  # highest length code
MAX_DISTANCE_SYMBOL = 29  # codes 30/31 are reserved
MAX_WINDOW_SIZE = 32 * 1024
MIN_MATCH_LENGTH = 3
MAX_MATCH_LENGTH = 258

#: Two-stage decoding emits 16-bit symbols; values with this flag set mark
#: "byte at window offset (value & 0x7FFF)" (paper §2.2).
MARKER_FLAG = 0x8000

# Length codes 257..285 -> (extra bits, base length). RFC 1951 §3.2.5.
LENGTH_EXTRA_BASE = (
    (0, 3), (0, 4), (0, 5), (0, 6), (0, 7), (0, 8), (0, 9), (0, 10),
    (1, 11), (1, 13), (1, 15), (1, 17),
    (2, 19), (2, 23), (2, 27), (2, 31),
    (3, 35), (3, 43), (3, 51), (3, 59),
    (4, 67), (4, 83), (4, 99), (4, 115),
    (5, 131), (5, 163), (5, 195), (5, 227),
    (0, 258),
)

# Distance codes 0..29 -> (extra bits, base distance).
DISTANCE_EXTRA_BASE = (
    (0, 1), (0, 2), (0, 3), (0, 4),
    (1, 5), (1, 7),
    (2, 9), (2, 13),
    (3, 17), (3, 25),
    (4, 33), (4, 49),
    (5, 65), (5, 97),
    (6, 129), (6, 193),
    (7, 257), (7, 385),
    (8, 513), (8, 769),
    (9, 1025), (9, 1537),
    (10, 2049), (10, 3073),
    (11, 4097), (11, 6145),
    (12, 8193), (12, 12289),
    (13, 16385), (13, 24577),
)


def length_to_symbol(length: int) -> tuple:
    """Map a match length (3..258) to ``(symbol, extra_bits, extra_value)``."""
    if length == MAX_MATCH_LENGTH:
        return 285, 0, 0
    for symbol, (extra, base) in enumerate(LENGTH_EXTRA_BASE[:-1]):
        if base <= length < base + (1 << extra):
            return 257 + symbol, extra, length - base
    raise ValueError(f"match length {length} out of range")


def distance_to_symbol(distance: int) -> tuple:
    """Map a match distance (1..32768) to ``(symbol, extra_bits, extra_value)``."""
    for symbol, (extra, base) in enumerate(DISTANCE_EXTRA_BASE):
        if base <= distance < base + (1 << extra):
            return symbol, extra, distance - base
    raise ValueError(f"distance {distance} out of range")
