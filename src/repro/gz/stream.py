"""Serial reference gzip decompressor built on the from-scratch decoder.

This is the single-threaded baseline every parallel result is compared
against in tests (and the stand-in for "GNU gzip" in relative benchmark
reporting). It handles multi-member files, verifies CRC-32 and ISIZE, and
reports per-member layout information that higher layers (index building,
BGZF detection) reuse.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..deflate.inflate import inflate
from ..errors import FormatError, IntegrityError
from ..io import BitReader, ensure_file_reader
from .crc32 import fast_crc32
from .header import GzipFooter, GzipHeader, MAGIC, parse_gzip_footer, parse_gzip_header

__all__ = ["MemberInfo", "decompress", "iter_members", "count_streams"]


@dataclass
class MemberInfo:
    """Layout of one gzip member inside the file."""

    header: GzipHeader
    footer: GzipFooter
    compressed_start: int  # byte offset of the member's first header byte
    deflate_start_bit: int  # bit offset of the Deflate stream
    deflate_end_bit: int  # bit offset just past the final block
    uncompressed_start: int  # offset of this member's data in the output
    uncompressed_size: int


def iter_members(source, *, verify: bool = True, max_size: int = None):
    """Yield ``(MemberInfo, data)`` for each gzip member in ``source``."""
    reader = BitReader(ensure_file_reader(source))
    total_output = 0
    while True:
        start_byte = reader.tell() // 8
        header = parse_gzip_header(reader)
        deflate_start = reader.tell()
        remaining_budget = None if max_size is None else max_size - total_output
        result = inflate(reader, max_size=remaining_budget)
        deflate_end = result.end_bit_offset
        reader.align_to_byte()
        footer = parse_gzip_footer(reader)
        data = result.data
        if verify:
            actual_crc = fast_crc32(data)
            if actual_crc != footer.crc32:
                raise IntegrityError(
                    f"CRC-32 mismatch in member at byte {start_byte}: "
                    f"stored {footer.crc32:#010x}, computed {actual_crc:#010x}"
                )
            if footer.isize != len(data) & 0xFFFFFFFF:
                raise IntegrityError(
                    f"ISIZE mismatch in member at byte {start_byte}: "
                    f"stored {footer.isize}, actual {len(data) & 0xFFFFFFFF}"
                )
        yield (
            MemberInfo(
                header=header,
                footer=footer,
                compressed_start=start_byte,
                deflate_start_bit=deflate_start,
                deflate_end_bit=deflate_end,
                uncompressed_start=total_output,
                uncompressed_size=len(data),
            ),
            data,
        )
        total_output += len(data)

        # Another member, trailing zero padding, or true EOF?
        position = reader.tell() // 8
        probe = reader._reader.pread(position, 2)
        if not probe:
            return
        if probe == MAGIC:
            continue
        tail = reader._reader.pread(position, 4096)
        if all(byte == 0 for byte in tail) and len(tail) < 4096:
            return  # bgzip-style zero padding at EOF
        raise FormatError(
            f"trailing garbage after gzip member at byte offset {position}"
        )


def decompress(source, *, verify: bool = True, max_size: int = None) -> bytes:
    """Decompress a complete (possibly multi-member) gzip file serially."""
    return b"".join(data for _info, data in iter_members(
        source, verify=verify, max_size=max_size
    ))


def count_streams(source) -> int:
    """Number of gzip members in the file (cheap full parse, discards data)."""
    return sum(1 for _ in iter_members(source, verify=False))
