"""Gzip writers with compressor *emulation profiles* (paper §4.8, Table 3).

Different gzip-producing tools differ in exactly the properties that decide
how well a parallel decompressor can chew their output:

* **average Dynamic Block size** (one Huffman code per block — longer blocks
  amortize the header, but make first-block discovery in a chunk costlier),
* **stream layout** (single member vs. many independent members),
* **pathologies** (bgzip -0 stores everything uncompressed; igzip -0 puts
  the whole file into a *single* Dynamic Block, which defeats block-finder
  parallelism entirely).

Each profile reproduces one tool's decompression-relevant layout. Engines:
``zlib`` (stdlib, fast — used for bulk corpus generation), ``custom`` (our
from-scratch :mod:`repro.deflate.compress`), ``stored`` (no compression).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace

from ..deflate.compress import CompressorOptions, DeflateCompressor
from ..errors import UsageError
from .bgzf import BGZF_EOF_BLOCK, MAX_BGZF_PAYLOAD, compress_bgzf
from .crc32 import fast_crc32
from .header import serialize_gzip_footer, serialize_gzip_header

__all__ = ["CompressionProfile", "PROFILES", "compress", "GzipWriter", "profile_for_tool"]


@dataclass(frozen=True)
class CompressionProfile:
    """Layout recipe for producing a gzip file."""

    name: str
    engine: str = "zlib"  # "zlib" | "custom" | "stored"
    level: int = 6
    member_size: int = None  # split into independent members (uncompressed bytes)
    flush_interval: int = None  # Z_FULL_FLUSH cadence inside one member (pigz-like)
    bgzf: bool = False  # BGZF container (implies small members + EOF block)
    block_size: int = 64 * 1024  # custom engine: uncompressed bytes per block
    block_type: str = "dynamic"  # custom engine block type
    huffman_only: bool = False  # custom engine: entropy-only (no LZ)
    single_block: bool = False  # custom engine: whole input in one block

    def with_level(self, level: int) -> "CompressionProfile":
        return replace(self, level=level)


PROFILES = {
    # GNU gzip: one member, zlib's block sizing (tens of KiB per block).
    "gzip": CompressionProfile(name="gzip"),
    # pigz: one member, sync flushes every 128 KiB -> empty stored blocks
    # between independently compressed chunks (paper §4.4 discusses these).
    "pigz": CompressionProfile(name="pigz", flush_interval=128 * 1024),
    # bgzip: BGZF — many tiny independent members with BSIZE metadata.
    "bgzf": CompressionProfile(name="bgzf", bgzf=True),
    # bgzip -0: BGZF with stored payloads (paper Table 3's fastest row).
    "bgzf-stored": CompressionProfile(name="bgzf-stored", bgzf=True, level=0),
    # igzip -0: entropy-only compression in one giant Dynamic Block — the
    # paper's unparallelizable pathology (Table 3, 0.16 GB/s row).
    "igzip0": CompressionProfile(
        name="igzip0", engine="custom", huffman_only=True, single_block=True
    ),
    # igzip -1..-3: fast compressors with large-ish blocks; layout-wise
    # close to zlib at low levels.
    "igzip": CompressionProfile(name="igzip", level=1),
    # Whole file stored uncompressed (gzip level 0).
    "stored": CompressionProfile(name="stored", engine="stored", level=0),
    # Our from-scratch compressor with explicit block sizing.
    "custom": CompressionProfile(name="custom", engine="custom"),
}


def profile_for_tool(tool: str, level: int = None) -> CompressionProfile:
    """Map a paper Table 3 row label like ``"pigz -9"`` to a profile."""
    tool = tool.strip()
    name, _, level_text = tool.partition(" ")
    if level is None and level_text:
        level = int(level_text.lstrip("-l "))
    if name == "bgzip":
        base = PROFILES["bgzf-stored"] if level == 0 else PROFILES["bgzf"]
        return base if level in (None, 0, -1) else base.with_level(level)
    if name == "igzip":
        return PROFILES["igzip0"] if level == 0 else PROFILES["igzip"].with_level(max(level or 1, 1))
    if name in PROFILES:
        base = PROFILES[name]
        return base.with_level(level) if level is not None else base
    raise UsageError(f"unknown compressor tool {tool!r}")


def _zlib_deflate(data: bytes, level: int, flush_interval: int = None) -> bytes:
    compressor = zlib.compressobj(level, zlib.DEFLATED, -15)
    if not flush_interval:
        return compressor.compress(data) + compressor.flush()
    pieces = []
    for start in range(0, len(data), flush_interval):
        chunk = data[start : start + flush_interval]
        pieces.append(compressor.compress(chunk))
        if start + flush_interval < len(data):
            # Full flush = byte-aligned empty stored block + dictionary
            # reset: the structure pigz leaves between its worker chunks.
            pieces.append(compressor.flush(zlib.Z_FULL_FLUSH))
    pieces.append(compressor.flush())
    return b"".join(pieces)


def _custom_deflate(data: bytes, profile: CompressionProfile) -> bytes:
    block_size = len(data) if profile.single_block else profile.block_size
    options = CompressorOptions(
        level=max(profile.level, 1),
        block_size=max(block_size, 1),
        block_type=profile.block_type,
        huffman_only=profile.huffman_only,
    )
    return DeflateCompressor(options).compress(data)


def _member(data: bytes, deflate_data: bytes, *, mtime: int = 0, name: str = None) -> bytes:
    header = serialize_gzip_header(mtime=mtime, name=name)
    return header + deflate_data + serialize_gzip_footer(fast_crc32(data), len(data))


def compress(
    data: bytes,
    profile="gzip",
    *,
    level: int = None,
    mtime: int = 0,
    name: str = None,
) -> bytes:
    """Compress ``data`` to a complete gzip file using a layout profile."""
    if isinstance(profile, str):
        profile = PROFILES[profile]
    if level is not None:
        profile = profile.with_level(level)

    if profile.bgzf:
        return compress_bgzf(data, profile.level)

    def deflate(piece: bytes) -> bytes:
        if profile.engine == "stored" or profile.level == 0:
            return _zlib_deflate(piece, 0)
        if profile.engine == "custom":
            return _custom_deflate(piece, profile)
        return _zlib_deflate(piece, profile.level, profile.flush_interval)

    if profile.member_size:
        members = []
        for start in range(0, len(data), profile.member_size):
            piece = data[start : start + profile.member_size]
            members.append(_member(piece, deflate(piece), mtime=mtime))
        if not members:
            members.append(_member(b"", deflate(b""), mtime=mtime))
        return b"".join(members)
    return _member(data, deflate(data), mtime=mtime, name=name)


class GzipWriter:
    """Streaming gzip writer over a binary file object.

    Buffers input and emits whole members/blocks on :meth:`close` (profiles
    with ``member_size``/BGZF emit as soon as a member fills). Usable as a
    context manager.
    """

    def __init__(self, fileobj, profile="gzip", *, level: int = None, mtime: int = 0):
        if isinstance(profile, str):
            profile = PROFILES[profile]
        if level is not None:
            profile = profile.with_level(level)
        self._fileobj = fileobj
        self._profile = profile
        self._buffer = bytearray()
        self._closed = False
        self._member_size = (
            MAX_BGZF_PAYLOAD if profile.bgzf else profile.member_size
        )

    def write(self, data: bytes) -> int:
        if self._closed:
            raise UsageError("write to closed GzipWriter")
        self._buffer += data
        if self._member_size:
            while len(self._buffer) >= self._member_size:
                piece = bytes(self._buffer[: self._member_size])
                del self._buffer[: self._member_size]
                self._emit_member(piece)
        return len(data)

    def _emit_member(self, piece: bytes) -> None:
        if self._profile.bgzf:
            from .bgzf import write_bgzf_member

            self._fileobj.write(write_bgzf_member(piece, self._profile.level))
        else:
            profile = replace(self._profile, member_size=None, bgzf=False)
            self._fileobj.write(compress(piece, profile))

    def close(self) -> None:
        if self._closed:
            return
        if self._buffer or not self._member_size:
            if self._member_size:
                self._emit_member(bytes(self._buffer))
            else:
                self._fileobj.write(compress(bytes(self._buffer), self._profile))
            self._buffer.clear()
        if self._profile.bgzf:
            self._fileobj.write(BGZF_EOF_BLOCK)
        self._closed = True

    def __enter__(self) -> "GzipWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
