"""CRC-32 (the gzip/zlib polynomial) from scratch, plus ``crc32_combine``.

The table-driven implementation is the correctness reference — tests pin it
against :func:`zlib.crc32`. Production paths use :data:`fast_crc32` (the
zlib C implementation; paper future work lists checksum verification, which
we implement behind a flag). ``crc32_combine`` composes the CRCs of
concatenated byte ranges in O(log n) — it lets the parallel reader verify a
multi-chunk stream without a serial CRC pass over the whole output.
"""

from __future__ import annotations

import zlib

__all__ = ["crc32", "fast_crc32", "crc32_combine", "CRC32_POLYNOMIAL"]

#: Reflected CRC-32 polynomial used by gzip, zlib, PNG, ...
CRC32_POLYNOMIAL = 0xEDB88320


def _build_table() -> list:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = (crc >> 1) ^ CRC32_POLYNOMIAL if crc & 1 else crc >> 1
        table.append(crc)
    return table


_TABLE = _build_table()


def crc32(data: bytes, crc: int = 0) -> int:
    """Pure-Python table-driven CRC-32, compatible with ``zlib.crc32``."""
    crc ^= 0xFFFFFFFF
    table = _TABLE
    for byte in data:
        crc = (crc >> 8) ^ table[(crc ^ byte) & 0xFF]
    return crc ^ 0xFFFFFFFF


#: C-speed CRC used on hot paths; semantically identical to :func:`crc32`.
fast_crc32 = zlib.crc32


# -- crc32_combine ------------------------------------------------------------
#
# Advancing a CRC over n zero bytes is a linear operation on GF(2)^32; we
# represent it as a 32x32 bit matrix (one int per column) and square it to
# apply 2^k zeros at a time — the same trick zlib uses.


def _matrix_times_vector(matrix: list, vector: int) -> int:
    result = 0
    index = 0
    while vector:
        if vector & 1:
            result ^= matrix[index]
        vector >>= 1
        index += 1
    return result


def _matrix_square(matrix: list) -> list:
    return [_matrix_times_vector(matrix, column) for column in matrix]


def _zero_operator() -> list:
    """Matrix advancing a CRC register by one zero *byte* (8 bit shifts)."""
    # One zero bit: crc' = (crc >> 1) ^ (poly if crc & 1 else 0).
    one_bit = [CRC32_POLYNOMIAL] + [1 << i for i in range(31)]
    matrix = one_bit
    for _ in range(2):  # square twice: 1 bit -> 2 bits -> 4 bits
        matrix = _matrix_square(matrix)
    return _matrix_square(matrix)  # -> 8 bits = 1 byte


def crc32_combine(crc1: int, crc2: int, length2: int) -> int:
    """CRC of ``A+B`` given ``crc32(A)``, ``crc32(B)`` and ``len(B)``."""
    if length2 <= 0:
        return crc1 & 0xFFFFFFFF
    matrix = _zero_operator()
    crc = crc1 & 0xFFFFFFFF
    while length2:
        if length2 & 1:
            crc = _matrix_times_vector(matrix, crc)
        matrix = _matrix_square(matrix)
        length2 >>= 1
    return (crc ^ crc2) & 0xFFFFFFFF
