"""Blocked GNU Zip Format (BGZF) support — paper §3.4.4.

BGZF files are ordinary multi-member gzip files whose members carry a
``BC`` extra subfield storing the member's total compressed size (BSIZE).
That metadata makes parallel decompression trivial: block offsets can be
gathered by hopping from header to header without decoding anything, so the
two-stage scheme can be skipped entirely — the chunk fetcher has a fast
path for detected BGZF files.
"""

from __future__ import annotations

import zlib

from ..errors import FormatError
from ..io import BitReader, ensure_file_reader
from .crc32 import fast_crc32
from .header import GzipHeader, parse_gzip_header, serialize_gzip_footer

__all__ = [
    "BGZF_EOF_BLOCK",
    "MAX_BGZF_PAYLOAD",
    "bgzf_extra_field",
    "bgzf_block_size",
    "is_bgzf",
    "bgzf_block_offsets",
    "write_bgzf_member",
    "compress_bgzf",
]

#: The canonical 28-byte empty BGZF block terminating every BGZF file.
BGZF_EOF_BLOCK = bytes.fromhex(
    "1f8b08040000000000ff0600424302001b0003000000000000000000"
)

#: bgzip limits each member to this much uncompressed data (0xFF00).
MAX_BGZF_PAYLOAD = 65280


def bgzf_extra_field(bsize: int) -> bytes:
    """The ``BC`` extra subfield encoding a total member size of ``bsize``."""
    if not 1 <= bsize <= 65536:
        raise FormatError(f"BGZF BSIZE {bsize} out of range")
    return b"BC" + (2).to_bytes(2, "little") + (bsize - 1).to_bytes(2, "little")


def bgzf_block_size(header: GzipHeader) -> int:
    """Extract the member's total compressed size; raises if not BGZF."""
    for si1, si2, payload in header.extra_subfields():
        if si1 == 0x42 and si2 == 0x43 and len(payload) == 2:
            return int.from_bytes(payload, "little") + 1
    raise FormatError("gzip member has no BGZF BC subfield")


def is_bgzf(source) -> bool:
    """True when the file's first member carries a BGZF BC subfield."""
    reader = BitReader(ensure_file_reader(source))
    try:
        header = parse_gzip_header(reader)
        bgzf_block_size(header)
        return True
    except Exception:
        return False


def bgzf_block_offsets(source) -> list:
    """Compressed byte offset of every member, by header hopping only."""
    file_reader = ensure_file_reader(source)
    size = file_reader.size()
    offsets = []
    position = 0
    while position < size:
        reader = BitReader(file_reader)
        reader.seek(position * 8)
        header = parse_gzip_header(reader)
        offsets.append(position)
        position += bgzf_block_size(header)
    if position != size:
        raise FormatError("BGZF chain does not cover the whole file")
    return offsets


def write_bgzf_member(data: bytes, level: int = 6) -> bytes:
    """One complete BGZF member (gzip header+deflate+footer with BSIZE)."""
    if len(data) > MAX_BGZF_PAYLOAD:
        raise FormatError(f"BGZF member payload limited to {MAX_BGZF_PAYLOAD} bytes")
    compressor = zlib.compressobj(level, zlib.DEFLATED, -15)
    deflate_data = compressor.compress(data) + compressor.flush()
    # Fixed-layout header: FEXTRA with the 6-byte BC subfield -> 18 bytes.
    bsize = 12 + 6 + len(deflate_data) + 8
    header = (
        b"\x1f\x8b\x08\x04"  # magic, deflate, FEXTRA
        + b"\x00\x00\x00\x00"  # mtime
        + b"\x00\xff"  # XFL, OS=unknown (matches bgzip)
        + (6).to_bytes(2, "little")
        + bgzf_extra_field(bsize)
    )
    footer = serialize_gzip_footer(fast_crc32(data), len(data))
    return header + deflate_data + footer


def compress_bgzf(data: bytes, level: int = 6, *, payload_size: int = MAX_BGZF_PAYLOAD) -> bytes:
    """Compress ``data`` into a full BGZF file (members + EOF block).

    ``level=0`` stores the payload uncompressed inside the Deflate stream
    (bgzip -l 0: the paper's fastest-to-decompress Table 3 variant, served
    by the stored-block memcpy fast path).
    """
    if payload_size > MAX_BGZF_PAYLOAD:
        raise FormatError("payload_size exceeds the BGZF maximum")
    members = []
    for start in range(0, len(data), payload_size) or [0]:
        members.append(write_bgzf_member(data[start : start + payload_size], level))
    if not members:
        members.append(write_bgzf_member(b"", level))
    members.append(BGZF_EOF_BLOCK)
    return b"".join(members)
