"""Gzip container layer: headers, CRC-32, serial reference decoder, writers."""

from .crc32 import crc32, crc32_combine, fast_crc32
from .header import (
    GzipFooter,
    GzipHeader,
    MAGIC,
    build_extra_subfields,
    parse_gzip_footer,
    parse_gzip_header,
    serialize_gzip_footer,
    serialize_gzip_header,
)
from .stream import MemberInfo, count_streams, decompress, iter_members

__all__ = [
    "crc32",
    "crc32_combine",
    "fast_crc32",
    "GzipFooter",
    "GzipHeader",
    "MAGIC",
    "build_extra_subfields",
    "parse_gzip_footer",
    "parse_gzip_header",
    "serialize_gzip_footer",
    "serialize_gzip_header",
    "ArchiveCatalog",
    "CatalogChunk",
    "detect_catalog",
    "synthesize_index",
    "MemberInfo",
    "count_streams",
    "decompress",
    "iter_members",
    "GzipWriter",
    "CompressionProfile",
]


def __getattr__(name):
    if name in ("GzipWriter", "CompressionProfile", "compress"):
        from . import writer

        return getattr(writer, name)
    if name in ("BgzfWriter", "is_bgzf", "bgzf_block_offsets"):
        from . import bgzf

        return getattr(bgzf, name)
    if name in ("ParallelGzipWriter", "compress_parallel", "CATALOGUED_LAYOUTS"):
        from . import parallel_writer

        return getattr(parallel_writer, name)
    if name in (
        "ArchiveCatalog",
        "CatalogChunk",
        "build_mz_payload",
        "parse_mz_payload",
        "build_rg_payload",
        "parse_rg_payload",
        "detect_catalog",
        "synthesize_index",
        "MZ_SUBFIELD_ID",
        "RG_SUBFIELD_ID",
    ):
        from . import catalog

        return getattr(catalog, name)
    raise AttributeError(f"module 'repro.gz' has no attribute {name!r}")
