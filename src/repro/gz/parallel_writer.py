"""Parallel gzip compression — the pigz/bgzip counterpart to the reader.

The paper's related-work section (§5) describes how parallel *compressors*
sidestep the decompression problem: pigz compresses chunks as separate
Deflate streams, bgzip as separate gzip members with size metadata. This
writer implements that side of the ecosystem on the same worker pool used
for decompression: input is split into fixed-size chunks, each chunk is
compressed independently (zlib releases the GIL, so threads give real
parallelism even in Python), and the results are concatenated in order as

* independent gzip members (``layout="members"`` — decompressible by
  anything, parallel-decompressible by this library's multi-member path),
* BGZF members with BSIZE metadata (``layout="bgzf"`` — enables the
  reader's metadata fast path),
* self-describing members (``layout="parallel-friendly"`` — members plus an
  MZ/RG chunk catalog in the first header, so readers synthesize a complete
  seek index at open with zero searching), or
* one member with isolated Deflate chunks (``layout="chunk-isolated"`` —
  LZ77 history reset and byte-aligned flush at every chunk boundary,
  advertised in an RG catalog; the densest parallel-friendly form).

The catalogued layouts buffer compressed results until :meth:`close`
because the catalog in the *first* header records every chunk's compressed
offset; they trade streaming output for marker-free parallel decode.

Files produced here are first-class inputs for ParallelGzipReader: many
member boundaries mean many chunk boundaries.
"""

from __future__ import annotations

import zlib

from ..errors import UsageError
from ..pool import ThreadPool
from .bgzf import BGZF_EOF_BLOCK, MAX_BGZF_PAYLOAD, write_bgzf_member
from .catalog import (
    ArchiveCatalog,
    CatalogChunk,
    MZ_SUBFIELD_ID,
    RG_SUBFIELD_ID,
    build_mz_payload,
    build_rg_payload,
)
from .crc32 import crc32_combine, fast_crc32
from .header import (
    build_extra_subfields,
    serialize_gzip_footer,
    serialize_gzip_header,
)

__all__ = ["ParallelGzipWriter", "compress_parallel", "CATALOGUED_LAYOUTS"]

#: Layouts that assemble output at close time around a chunk catalog.
CATALOGUED_LAYOUTS = ("parallel-friendly", "chunk-isolated")

#: Final empty fixed-Huffman block (BFINAL=1, BTYPE=01, EOB) terminating a
#: chunk-isolated Deflate stream.
_FINAL_EMPTY_BLOCK = b"\x03\x00"

def _mz_framed_size(count: int) -> int:
    """Framed size of an MZ subfield: 4-byte frame + u32 count + u32 each."""
    return 4 + 4 + 4 * count


def _rg_framed_size(count: int) -> int:
    """Framed size of an RG subfield: 4-byte frame + 28 fixed + 20 each."""
    return 4 + 28 + 20 * count


def _member_task(piece: bytes, level: int, layout: str) -> bytes:
    if layout == "bgzf":
        return write_bgzf_member(piece, level)
    compressor = zlib.compressobj(level, zlib.DEFLATED, -15)
    deflated = compressor.compress(piece) + compressor.flush()
    return (
        serialize_gzip_header()
        + deflated
        + serialize_gzip_footer(fast_crc32(piece), len(piece))
    )


def _catalogued_task(piece: bytes, level: int, layout: str) -> tuple:
    """Compress one chunk for a catalogued layout.

    Returns ``(compressed, crc32, length)``; for ``chunk-isolated`` the
    compressed bytes end with a Z_FULL_FLUSH (empty stored block) so the
    next chunk starts byte-aligned with fresh LZ77 history.
    """
    compressor = zlib.compressobj(level, zlib.DEFLATED, -15)
    if layout == "chunk-isolated":
        compressed = compressor.compress(piece) + compressor.flush(
            zlib.Z_FULL_FLUSH
        )
    else:
        compressed = compressor.compress(piece) + compressor.flush()
    return compressed, fast_crc32(piece), len(piece)


class ParallelGzipWriter:
    """Streaming parallel compressor over a binary file object."""

    def __init__(
        self,
        fileobj,
        *,
        parallelization: int = 1,
        level: int = 6,
        chunk_size: int = 512 * 1024,
        layout: str = "members",
    ):
        if layout not in ("members", "bgzf") + CATALOGUED_LAYOUTS:
            raise UsageError(f"unknown layout {layout!r}")
        if layout == "bgzf" and chunk_size > MAX_BGZF_PAYLOAD:
            chunk_size = MAX_BGZF_PAYLOAD
        if chunk_size < 1:
            raise UsageError("chunk_size must be positive")
        self._fileobj = fileobj
        self._level = level
        self._chunk_size = chunk_size
        self._layout = layout
        self._pool = ThreadPool(max(parallelization, 1))
        self._pending: list = []  # futures, in input order
        self._buffer = bytearray()
        self._closed = False
        #: Finished (compressed, crc, length) tuples for catalogued layouts.
        self._results: list = []
        #: Bound memory: don't let more than this many members queue up.
        self._max_pending = 4 * max(parallelization, 1)

    def write(self, data: bytes) -> int:
        if self._closed:
            raise UsageError("write to closed ParallelGzipWriter")
        self._buffer += data
        while len(self._buffer) >= self._chunk_size:
            piece = bytes(self._buffer[: self._chunk_size])
            del self._buffer[: self._chunk_size]
            self._submit(piece)
        return len(data)

    def _submit(self, piece: bytes) -> None:
        task = (
            _catalogued_task
            if self._layout in CATALOGUED_LAYOUTS
            else _member_task
        )
        self._pending.append(
            self._pool.submit(task, piece, self._level, self._layout)
        )
        while len(self._pending) > self._max_pending:
            self._drain_one()

    def _drain_one(self) -> None:
        result = self._pending.pop(0).result()
        if self._layout in CATALOGUED_LAYOUTS:
            # Catalogued layouts assemble at close: the first header's
            # catalog records every chunk's compressed offset.
            self._results.append(result)
        else:
            self._fileobj.write(result)

    def close(self) -> None:
        if self._closed:
            return
        if self._buffer or not (self._pending or self._results):
            self._submit(bytes(self._buffer))
            self._buffer.clear()
        while self._pending:
            self._drain_one()
        if self._layout == "parallel-friendly":
            self._write_parallel_friendly()
        elif self._layout == "chunk-isolated":
            self._write_chunk_isolated()
        elif self._layout == "bgzf":
            self._fileobj.write(BGZF_EOF_BLOCK)
        self._pool.shutdown()
        self._closed = True

    # -- catalogued assembly ---------------------------------------------------

    def _write_parallel_friendly(self) -> None:
        """Members layout with an MZ+RG chunk catalog in the first header."""
        results = self._results
        count = len(results)
        include_rg = True
        extra_size = _mz_framed_size(count) + _rg_framed_size(count)
        if extra_size > 0xFFFF:
            # MZ alone reaches ~4x more chunks; still fully seekable, just
            # without per-chunk bit offsets and CRCs.
            include_rg = False
            extra_size = _mz_framed_size(count)
        if extra_size > 0xFFFF:
            raise UsageError(
                f"{count} chunks overflow the u16 FEXTRA catalog; raise "
                f"chunk_size so the archive has at most "
                f"{(0xFFFF - 8) // 4} chunks"
            )
        first_header_size = 12 + extra_size
        member_sizes = [
            (first_header_size if number == 0 else 10) + len(compressed) + 8
            for number, (compressed, _crc, _length) in enumerate(results)
        ]

        chunks = []
        start_byte = 0
        output_offset = 0
        for number, (_compressed, crc, length) in enumerate(results):
            chunks.append(CatalogChunk(start_byte * 8, output_offset, crc))
            start_byte += member_sizes[number]
            output_offset += length
        catalog = ArchiveCatalog(
            layout="members",
            source="rg",
            chunks=chunks,
            uncompressed_size=output_offset,
            compressed_size=sum(member_sizes),
        )
        subfields = [MZ_SUBFIELD_ID + (build_mz_payload(member_sizes),)]
        if include_rg:
            subfields.append(RG_SUBFIELD_ID + (build_rg_payload(catalog),))
        extra = build_extra_subfields(subfields)

        for number, (compressed, crc, length) in enumerate(results):
            header = serialize_gzip_header(extra=extra if number == 0 else None)
            self._fileobj.write(header)
            self._fileobj.write(compressed)
            self._fileobj.write(serialize_gzip_footer(crc, length))

    def _write_chunk_isolated(self) -> None:
        """One member whose Deflate stream resets history per chunk."""
        results = self._results
        count = len(results)
        if _rg_framed_size(count) > 0xFFFF:
            raise UsageError(
                f"{count} chunks overflow the u16 FEXTRA catalog; raise "
                f"chunk_size so the archive has at most "
                f"{(0xFFFF - 32) // 20} chunks"
            )
        header_size = 12 + _rg_framed_size(count)
        total_compressed = (
            header_size
            + sum(len(compressed) for compressed, _crc, _length in results)
            + len(_FINAL_EMPTY_BLOCK)
            + 8
        )

        chunks = []
        start_byte = 0  # chunk 0 addresses the member start (bit 0)
        output_offset = 0
        total_crc = 0
        for compressed, crc, length in results:
            chunks.append(CatalogChunk(start_byte * 8, output_offset, crc))
            start_byte = (start_byte or header_size) + len(compressed)
            output_offset += length
            total_crc = crc32_combine(total_crc, crc, length)
        catalog = ArchiveCatalog(
            layout="chunk-isolated",
            source="rg",
            chunks=chunks,
            uncompressed_size=output_offset,
            compressed_size=total_compressed,
        )
        extra = build_extra_subfields(
            [RG_SUBFIELD_ID + (build_rg_payload(catalog),)]
        )

        self._fileobj.write(serialize_gzip_header(extra=extra))
        for compressed, _crc, _length in results:
            self._fileobj.write(compressed)
        self._fileobj.write(_FINAL_EMPTY_BLOCK)
        self._fileobj.write(serialize_gzip_footer(total_crc, output_offset))

    def __enter__(self) -> "ParallelGzipWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def compress_parallel(
    data: bytes,
    *,
    parallelization: int = 1,
    level: int = 6,
    chunk_size: int = 512 * 1024,
    layout: str = "members",
) -> bytes:
    """One-shot parallel gzip compression."""
    import io

    sink = io.BytesIO()
    with ParallelGzipWriter(
        sink,
        parallelization=parallelization,
        level=level,
        chunk_size=chunk_size,
        layout=layout,
    ) as writer:
        writer.write(data)
    return sink.getvalue()
