"""Parallel gzip compression — the pigz/bgzip counterpart to the reader.

The paper's related-work section (§5) describes how parallel *compressors*
sidestep the decompression problem: pigz compresses chunks as separate
Deflate streams, bgzip as separate gzip members with size metadata. This
writer implements that side of the ecosystem on the same worker pool used
for decompression: input is split into fixed-size chunks, each chunk is
compressed independently (zlib releases the GIL, so threads give real
parallelism even in Python), and the results are concatenated in order as

* independent gzip members (``layout="members"`` — decompressible by
  anything, parallel-decompressible by this library's multi-member path), or
* BGZF members with BSIZE metadata (``layout="bgzf"`` — enables the
  reader's metadata fast path).

Files produced here are first-class inputs for ParallelGzipReader: many
member boundaries mean many chunk boundaries.
"""

from __future__ import annotations

import zlib

from ..errors import UsageError
from ..pool import ThreadPool
from .bgzf import BGZF_EOF_BLOCK, MAX_BGZF_PAYLOAD, write_bgzf_member
from .crc32 import fast_crc32
from .header import serialize_gzip_footer, serialize_gzip_header

__all__ = ["ParallelGzipWriter", "compress_parallel"]


def _member_task(piece: bytes, level: int, layout: str) -> bytes:
    if layout == "bgzf":
        return write_bgzf_member(piece, level)
    compressor = zlib.compressobj(level, zlib.DEFLATED, -15)
    deflated = compressor.compress(piece) + compressor.flush()
    return (
        serialize_gzip_header()
        + deflated
        + serialize_gzip_footer(fast_crc32(piece), len(piece))
    )


class ParallelGzipWriter:
    """Streaming parallel compressor over a binary file object."""

    def __init__(
        self,
        fileobj,
        *,
        parallelization: int = 1,
        level: int = 6,
        chunk_size: int = 512 * 1024,
        layout: str = "members",
    ):
        if layout not in ("members", "bgzf"):
            raise UsageError(f"unknown layout {layout!r}")
        if layout == "bgzf" and chunk_size > MAX_BGZF_PAYLOAD:
            chunk_size = MAX_BGZF_PAYLOAD
        if chunk_size < 1:
            raise UsageError("chunk_size must be positive")
        self._fileobj = fileobj
        self._level = level
        self._chunk_size = chunk_size
        self._layout = layout
        self._pool = ThreadPool(max(parallelization, 1))
        self._pending: list = []  # futures, in input order
        self._buffer = bytearray()
        self._closed = False
        #: Bound memory: don't let more than this many members queue up.
        self._max_pending = 4 * max(parallelization, 1)

    def write(self, data: bytes) -> int:
        if self._closed:
            raise UsageError("write to closed ParallelGzipWriter")
        self._buffer += data
        while len(self._buffer) >= self._chunk_size:
            piece = bytes(self._buffer[: self._chunk_size])
            del self._buffer[: self._chunk_size]
            self._submit(piece)
        return len(data)

    def _submit(self, piece: bytes) -> None:
        self._pending.append(
            self._pool.submit(_member_task, piece, self._level, self._layout)
        )
        while len(self._pending) > self._max_pending:
            self._drain_one()

    def _drain_one(self) -> None:
        self._fileobj.write(self._pending.pop(0).result())

    def close(self) -> None:
        if self._closed:
            return
        if self._buffer or not self._pending:
            self._submit(bytes(self._buffer))
            self._buffer.clear()
        while self._pending:
            self._drain_one()
        if self._layout == "bgzf":
            self._fileobj.write(BGZF_EOF_BLOCK)
        self._pool.shutdown()
        self._closed = True

    def __enter__(self) -> "ParallelGzipWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def compress_parallel(
    data: bytes,
    *,
    parallelization: int = 1,
    level: int = 6,
    chunk_size: int = 512 * 1024,
    layout: str = "members",
) -> bytes:
    """One-shot parallel gzip compression."""
    import io

    sink = io.BytesIO()
    with ParallelGzipWriter(
        sink,
        parallelization=parallelization,
        level=level,
        chunk_size=chunk_size,
        layout=layout,
    ) as writer:
        writer.write(data)
    return sink.getvalue()
