"""Self-describing seekable archives: FEXTRA chunk catalogs.

A parallel-friendly archive carries its own seek index inside the first
member header (RFC 1952 FEXTRA), so a reader can synthesize a complete
:class:`~repro.index.GzipIndex` at open time — zero block-finder searches,
zero speculative marker decodes — while stock ``gunzip`` ignores the
subfields entirely. Two subfields are written:

* ``MZ`` — mgzip-compatible: ``u32 count`` followed by one ``u32`` total
  compressed length per member. Enough for third-party tools (and for us,
  via footer ISIZEs) to locate every member without searching.
* ``RG`` — our richer catalog: exact compressed *bit* offsets, uncompressed
  offsets, and a CRC-32 per chunk, plus totals and a trailing self-CRC so a
  damaged catalog is detected and ignored rather than trusted.

``RG`` payload v1 (little-endian)::

    u8  version (=1)
    u8  layout  (1 = members, 2 = chunk-isolated)
    u16 flags   (=0)
    u32 chunk count
    u64 total uncompressed size
    u64 total compressed size (file bytes)
    chunk count x { u64 start_bit, u64 uncompressed_offset, u32 crc32 }
    u32 CRC-32 of all preceding payload bytes

Detection is strictly best-effort: any malformed subfield degrades to the
ordinary search path (lost speedup, never wrong bytes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import FormatError
from ..index import GzipIndex, SeekPoint
from ..io import BitReader
from .crc32 import fast_crc32
from .header import MAGIC, parse_gzip_header

__all__ = [
    "CatalogChunk",
    "ArchiveCatalog",
    "MZ_SUBFIELD_ID",
    "RG_SUBFIELD_ID",
    "build_mz_payload",
    "parse_mz_payload",
    "build_rg_payload",
    "parse_rg_payload",
    "detect_catalog",
    "synthesize_index",
]

MZ_SUBFIELD_ID = (ord("M"), ord("Z"))
RG_SUBFIELD_ID = (ord("R"), ord("G"))

_RG_VERSION = 1
_RG_LAYOUTS = {1: "members", 2: "chunk-isolated"}
_RG_LAYOUT_CODES = {name: code for code, name in _RG_LAYOUTS.items()}


@dataclass(frozen=True)
class CatalogChunk:
    """One advertised chunk: where it starts and what it decodes to."""

    start_bit: int
    uncompressed_offset: int
    crc32: int = None  # per-chunk CRC-32; None when the source lacks one


@dataclass
class ArchiveCatalog:
    """A parsed chunk catalog, ready for index synthesis."""

    layout: str  # "members" | "chunk-isolated"
    source: str  # "rg" | "mz"
    chunks: list = field(default_factory=list)
    uncompressed_size: int = 0
    compressed_size: int = 0  # file bytes

    def chunk_length(self, index: int) -> int:
        """Uncompressed byte count of chunk ``index``."""
        start = self.chunks[index].uncompressed_offset
        if index + 1 < len(self.chunks):
            return self.chunks[index + 1].uncompressed_offset - start
        return self.uncompressed_size - start


# -- MZ (mgzip interop) ------------------------------------------------------


def build_mz_payload(member_lengths: list) -> bytes:
    """Encode total compressed member lengths, mgzip style."""
    out = bytearray(len(member_lengths).to_bytes(4, "little"))
    for length in member_lengths:
        out += length.to_bytes(4, "little")
    return bytes(out)


def parse_mz_payload(payload: bytes) -> list:
    """Decode an ``MZ`` subfield into member lengths, validating framing."""
    if len(payload) < 4:
        raise FormatError("MZ subfield shorter than its count field")
    count = int.from_bytes(payload[:4], "little")
    if len(payload) != 4 + 4 * count:
        raise FormatError(
            f"MZ subfield declares {count} members but carries "
            f"{len(payload) - 4} payload bytes"
        )
    lengths = [
        int.from_bytes(payload[4 + 4 * i : 8 + 4 * i], "little")
        for i in range(count)
    ]
    if not lengths:
        raise FormatError("MZ subfield declares zero members")
    if any(length < 20 for length in lengths):
        raise FormatError("MZ subfield member shorter than a minimal member")
    return lengths


# -- RG (rich catalog) -------------------------------------------------------


def build_rg_payload(catalog: ArchiveCatalog) -> bytes:
    out = bytearray()
    out.append(_RG_VERSION)
    out.append(_RG_LAYOUT_CODES[catalog.layout])
    out += (0).to_bytes(2, "little")
    out += len(catalog.chunks).to_bytes(4, "little")
    out += catalog.uncompressed_size.to_bytes(8, "little")
    out += catalog.compressed_size.to_bytes(8, "little")
    for chunk in catalog.chunks:
        out += chunk.start_bit.to_bytes(8, "little")
        out += chunk.uncompressed_offset.to_bytes(8, "little")
        out += (chunk.crc32 or 0).to_bytes(4, "little")
    out += (fast_crc32(bytes(out)) & 0xFFFFFFFF).to_bytes(4, "little")
    return bytes(out)


def parse_rg_payload(payload: bytes) -> ArchiveCatalog:
    if len(payload) < 28:
        raise FormatError("RG subfield shorter than its fixed header")
    body, declared_crc = payload[:-4], payload[-4:]
    if (fast_crc32(body) & 0xFFFFFFFF).to_bytes(4, "little") != declared_crc:
        raise FormatError("RG subfield self-CRC mismatch")
    if body[0] != _RG_VERSION:
        raise FormatError(f"unsupported RG catalog version {body[0]}")
    layout = _RG_LAYOUTS.get(body[1])
    if layout is None:
        raise FormatError(f"unknown RG catalog layout code {body[1]}")
    count = int.from_bytes(body[4:8], "little")
    if len(body) != 24 + 20 * count:
        raise FormatError(
            f"RG subfield declares {count} chunks but carries "
            f"{len(body) - 24} chunk-table bytes"
        )
    if count == 0:
        raise FormatError("RG subfield declares zero chunks")
    catalog = ArchiveCatalog(
        layout=layout,
        source="rg",
        uncompressed_size=int.from_bytes(body[8:16], "little"),
        compressed_size=int.from_bytes(body[16:24], "little"),
    )
    previous_bit = -1
    previous_offset = 0
    for i in range(count):
        base = 24 + 20 * i
        start_bit = int.from_bytes(body[base : base + 8], "little")
        offset = int.from_bytes(body[base + 8 : base + 16], "little")
        crc = int.from_bytes(body[base + 16 : base + 20], "little")
        if start_bit <= previous_bit or offset < previous_offset:
            raise FormatError(f"non-monotonic RG catalog entry {i}")
        previous_bit, previous_offset = start_bit, offset
        catalog.chunks.append(CatalogChunk(start_bit, offset, crc))
    if catalog.chunks[0].start_bit != 0:
        raise FormatError("RG catalog must start at bit 0")
    if previous_offset > catalog.uncompressed_size:
        raise FormatError("RG catalog chunk offsets exceed the declared size")
    return catalog


# -- detection ---------------------------------------------------------------


def _catalog_from_mz(file_reader, lengths: list) -> ArchiveCatalog:
    """Validate MZ member lengths against the file and read footer totals."""
    file_size = file_reader.size()
    if sum(lengths) != file_size:
        raise FormatError(
            f"MZ member lengths sum to {sum(lengths)}, file is "
            f"{file_size} bytes"
        )
    catalog = ArchiveCatalog(
        layout="members", source="mz", compressed_size=file_size
    )
    # Remote sources: the per-member magic/footer probes below would pay
    # one wire round trip each — hint them all up front so a block-cached
    # reader fetches concurrently and the serial walk hits cache.
    warm = getattr(file_reader, "warm_ranges", None)
    if warm is not None:
        spans, probe_offset = [], 0
        for length in lengths:
            spans.append((probe_offset, 2))
            spans.append((probe_offset + length - 8, 8))
            probe_offset += length
        warm(spans)
    offset = 0
    output_offset = 0
    for length in lengths:
        if file_reader.pread(offset, 2) != MAGIC:
            raise FormatError(
                f"MZ catalog points at byte {offset} but no member starts there"
            )
        footer = file_reader.pread(offset + length - 8, 8)
        if len(footer) < 8:
            raise FormatError("truncated member footer behind MZ catalog")
        catalog.chunks.append(
            CatalogChunk(
                start_bit=offset * 8,
                uncompressed_offset=output_offset,
                crc32=int.from_bytes(footer[:4], "little"),
            )
        )
        offset += length
        output_offset += int.from_bytes(footer[4:8], "little")
    catalog.uncompressed_size = output_offset
    return catalog


def _validate_rg_catalog(file_reader, catalog: ArchiveCatalog) -> None:
    if catalog.compressed_size != file_reader.size():
        raise FormatError(
            f"RG catalog describes a {catalog.compressed_size}-byte file, "
            f"this file is {file_reader.size()} bytes"
        )
    warm = getattr(file_reader, "warm_ranges", None)
    if warm is not None and catalog.layout == "members":
        warm([
            (chunk.start_bit // 8, 2)
            for chunk in catalog.chunks
            if chunk.start_bit % 8 == 0
        ])
    for chunk in catalog.chunks:
        if chunk.start_bit % 8:
            raise FormatError("RG catalog chunk start is not byte-aligned")
        if chunk.start_bit >= file_reader.size() * 8:
            raise FormatError("RG catalog chunk starts past end of file")
        if catalog.layout == "members" and file_reader.pread(
            chunk.start_bit // 8, 2
        ) != MAGIC:
            raise FormatError(
                f"RG catalog points at byte {chunk.start_bit // 8} but no "
                "member starts there"
            )


def detect_catalog(file_reader):
    """Probe the first member header for a chunk catalog.

    Returns ``(catalog, errors)``: the parsed :class:`ArchiveCatalog` (or
    ``None``) plus human-readable reasons each *present* subfield was
    rejected. Files without MZ/RG subfields return ``(None, [])`` silently;
    any parse or validation failure lands in ``errors`` and never
    propagates — the caller falls back to the search path.
    """
    try:
        reader = BitReader(file_reader.clone())
        header = parse_gzip_header(reader)
        subfields = header.extra_subfields()
    except Exception:
        return None, []

    by_id = {}
    for si1, si2, payload in subfields:
        by_id.setdefault((si1, si2), payload)

    errors = []
    if RG_SUBFIELD_ID in by_id:
        try:
            catalog = parse_rg_payload(by_id[RG_SUBFIELD_ID])
            _validate_rg_catalog(file_reader, catalog)
            return catalog, errors
        except FormatError as error:
            errors.append(f"RG: {error}")
    if MZ_SUBFIELD_ID in by_id:
        try:
            lengths = parse_mz_payload(by_id[MZ_SUBFIELD_ID])
            return _catalog_from_mz(file_reader, lengths), errors
        except FormatError as error:
            errors.append(f"MZ: {error}")
    return None, errors


def synthesize_index(catalog: ArchiveCatalog, file_size: int) -> GzipIndex:
    """Build a finalized :class:`GzipIndex` from a catalog.

    Every seek point carries an *empty* window — by construction no chunk
    references history before its own start, so the conventional kernel can
    decode each interval with zero propagated state.
    """
    index = GzipIndex()
    for number, chunk in enumerate(catalog.chunks):
        index.add(
            SeekPoint(
                compressed_bit_offset=chunk.start_bit,
                uncompressed_offset=chunk.uncompressed_offset,
                window=b"",
                is_stream_start=(
                    catalog.layout == "members" or number == 0
                ),
            )
        )
    index.finalize(catalog.uncompressed_size, file_size * 8)
    return index
