"""Gzip stream header and footer parsing/serialization (RFC 1952).

Header parsing operates on a byte-aligned :class:`~repro.io.BitReader` so
that the chunk decoder can interleave Deflate decoding with stream-boundary
handling in multi-stream files (paper §1.3: "gzip files with more than one
gzip stream are supported").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import GzipHeaderError, TruncatedError, UsageError
from .crc32 import fast_crc32

__all__ = [
    "GzipHeader",
    "GzipFooter",
    "MAGIC",
    "parse_gzip_header",
    "parse_gzip_footer",
    "serialize_gzip_header",
    "serialize_gzip_footer",
    "build_extra_subfields",
    "FTEXT",
    "FHCRC",
    "FEXTRA",
    "FNAME",
    "FCOMMENT",
]

MAGIC = b"\x1f\x8b"
_CM_DEFLATE = 8

FTEXT = 0x01
FHCRC = 0x02
FEXTRA = 0x04
FNAME = 0x08
FCOMMENT = 0x10
_FRESERVED = 0xE0

#: XFL hints written by common compressors.
XFL_SLOWEST = 2
XFL_FASTEST = 4
OS_UNIX = 3
OS_UNKNOWN = 255


@dataclass
class GzipHeader:
    """Parsed gzip member header."""

    ftext: bool = False
    mtime: int = 0
    xfl: int = 0
    os: int = OS_UNKNOWN
    extra: bytes = None
    name: str = None
    comment: str = None
    header_crc16: int = None
    size_bytes: int = 10

    def extra_subfields(self) -> list:
        """Decode the FEXTRA payload into ``(si1, si2, data)`` subfields."""
        fields = []
        data = self.extra or b""
        position = 0
        while position + 4 <= len(data):
            si1, si2 = data[position], data[position + 1]
            length = int.from_bytes(data[position + 2 : position + 4], "little")
            payload = data[position + 4 : position + 4 + length]
            fields.append((si1, si2, payload))
            position += 4 + length
        return fields


@dataclass
class GzipFooter:
    crc32: int
    isize: int
    size_bytes: int = field(default=8, init=False)


def _read_exact(reader, nbytes: int) -> bytes:
    data = reader.read_bytes(nbytes)
    if len(data) != nbytes:
        raise TruncatedError("gzip header ends prematurely")
    return data


def parse_gzip_header(reader, *, verify_header_crc: bool = True) -> GzipHeader:
    """Parse one member header at the reader's (byte-aligned) position."""
    start_byte = reader.tell() // 8
    fixed = _read_exact(reader, 10)
    if fixed[:2] != MAGIC:
        raise GzipHeaderError(
            f"bad magic bytes {fixed[:2]!r} at byte offset {start_byte}"
        )
    if fixed[2] != _CM_DEFLATE:
        raise GzipHeaderError(f"unsupported compression method {fixed[2]}")
    flags = fixed[3]
    if flags & _FRESERVED:
        raise GzipHeaderError(f"reserved flag bits set: {flags:#04x}")

    header = GzipHeader(
        ftext=bool(flags & FTEXT),
        mtime=int.from_bytes(fixed[4:8], "little"),
        xfl=fixed[8],
        os=fixed[9],
    )

    if flags & FEXTRA:
        xlen = int.from_bytes(_read_exact(reader, 2), "little")
        header.extra = _read_exact(reader, xlen)
    if flags & FNAME:
        header.name = _read_zero_terminated(reader).decode("latin-1")
    if flags & FCOMMENT:
        header.comment = _read_zero_terminated(reader).decode("latin-1")
    if flags & FHCRC:
        header.header_crc16 = int.from_bytes(_read_exact(reader, 2), "little")
        if verify_header_crc:
            end_byte = reader.tell() // 8
            raw = reader._reader.pread(start_byte, end_byte - 2 - start_byte)
            if fast_crc32(raw) & 0xFFFF != header.header_crc16:
                raise GzipHeaderError("header CRC16 mismatch")

    header.size_bytes = reader.tell() // 8 - start_byte
    return header


def _read_zero_terminated(reader) -> bytes:
    out = bytearray()
    while True:
        byte = _read_exact(reader, 1)[0]
        if byte == 0:
            return bytes(out)
        out.append(byte)
        if len(out) > 65536:
            raise GzipHeaderError("unterminated header string")


def parse_gzip_footer(reader) -> GzipFooter:
    """Parse the CRC-32 + ISIZE trailer; reader must be byte-aligned."""
    raw = _read_exact(reader, 8)
    return GzipFooter(
        crc32=int.from_bytes(raw[:4], "little"),
        isize=int.from_bytes(raw[4:], "little"),
    )


def build_extra_subfields(subfields) -> bytes:
    """Encode ``(si1, si2, payload)`` subfields into one FEXTRA blob.

    RFC 1952 frames each subfield as SI1 SI2 LEN(u16 LE) payload; the whole
    blob must fit the u16 XLEN field.
    """
    out = bytearray()
    for si1, si2, payload in subfields:
        if isinstance(si1, (bytes, bytearray)):
            si1 = si1[0]
        if isinstance(si2, (bytes, bytearray)):
            si2 = si2[0]
        if len(payload) > 0xFFFF:
            raise UsageError(
                f"FEXTRA subfield {chr(si1)}{chr(si2)} payload is "
                f"{len(payload)} bytes; the u16 LEN field caps it at 65535"
            )
        out.append(si1)
        out.append(si2)
        out += len(payload).to_bytes(2, "little")
        out += payload
    if len(out) > 0xFFFF:
        raise UsageError(
            f"FEXTRA blob is {len(out)} bytes; the u16 XLEN field caps the "
            "combined subfields at 65535"
        )
    return bytes(out)


def serialize_gzip_header(
    *,
    ftext: bool = False,
    mtime: int = 0,
    xfl: int = 0,
    os: int = OS_UNIX,
    extra=None,
    name: str = None,
    comment: str = None,
    header_crc: bool = False,
) -> bytes:
    """Build a member header with the requested optional fields.

    ``extra`` may be a raw FEXTRA blob (``bytes``) or a list of
    ``(si1, si2, payload)`` subfield tuples, which are framed via
    :func:`build_extra_subfields`.
    """
    if extra is not None and not isinstance(extra, (bytes, bytearray)):
        extra = build_extra_subfields(extra)
    if extra is not None and len(extra) > 0xFFFF:
        raise UsageError(
            f"FEXTRA blob is {len(extra)} bytes; the u16 XLEN field caps it "
            "at 65535"
        )
    flags = (
        (FTEXT if ftext else 0)
        | (FEXTRA if extra is not None else 0)
        | (FNAME if name is not None else 0)
        | (FCOMMENT if comment is not None else 0)
        | (FHCRC if header_crc else 0)
    )
    out = bytearray(MAGIC)
    out.append(_CM_DEFLATE)
    out.append(flags)
    out += mtime.to_bytes(4, "little")
    out.append(xfl)
    out.append(os)
    if extra is not None:
        out += len(extra).to_bytes(2, "little")
        out += extra
    if name is not None:
        out += name.encode("latin-1") + b"\x00"
    if comment is not None:
        out += comment.encode("latin-1") + b"\x00"
    if header_crc:
        out += (fast_crc32(bytes(out)) & 0xFFFF).to_bytes(2, "little")
    return bytes(out)


def serialize_gzip_footer(crc32_value: int, uncompressed_size: int) -> bytes:
    return (crc32_value & 0xFFFFFFFF).to_bytes(4, "little") + (
        uncompressed_size & 0xFFFFFFFF
    ).to_bytes(4, "little")
