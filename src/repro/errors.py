"""Exception hierarchy for the rapidgzip reproduction.

The decoder distinguishes *format* errors (the bits do not form a valid
Deflate/gzip structure — expected and frequent while the block finder probes
candidate offsets) from *usage* errors and *integrity* errors (a structurally
valid stream whose checksum or length trailer does not match).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class FormatError(ReproError):
    """The input bits do not form a valid gzip/Deflate structure.

    Raised (and caught) heavily during speculative decoding: a block-finder
    candidate that turns out to be a false positive surfaces as a
    ``FormatError`` from the Deflate parser.
    """


class GzipHeaderError(FormatError):
    """Invalid or unsupported gzip stream header."""


class DeflateError(FormatError):
    """Invalid Deflate block structure or compressed payload."""


class HuffmanError(DeflateError):
    """Code lengths do not define a valid (or efficient) Huffman code."""


class IntegrityError(ReproError):
    """Decompressed data does not match the stream's CRC-32 or ISIZE."""


class TruncatedError(FormatError):
    """The input ended in the middle of a structure."""

    def __init__(self, message: str = "unexpected end of input"):
        super().__init__(message)


class UsageError(ReproError):
    """The public API was used incorrectly (bad arguments, closed reader)."""


class WorkerCrashedError(ReproError):
    """A pool worker process died before finishing its task.

    Raised from the task's future (and therefore from
    :meth:`GzipChunkFetcher.request`) when a process-backend worker is
    killed — OOM, signal, or interpreter abort — so the failure surfaces
    to the consumer instead of hanging the pipeline.
    """


class RecoveryError(ReproError):
    """Corrupted-file recovery could not locate any decodable region."""
