"""Exception hierarchy for the rapidgzip reproduction.

The decoder distinguishes *format* errors (the bits do not form a valid
Deflate/gzip structure — expected and frequent while the block finder probes
candidate offsets) from *usage* errors and *integrity* errors (a structurally
valid stream whose checksum or length trailer does not match).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class FormatError(ReproError):
    """The input bits do not form a valid gzip/Deflate structure.

    Raised (and caught) heavily during speculative decoding: a block-finder
    candidate that turns out to be a false positive surfaces as a
    ``FormatError`` from the Deflate parser.
    """


class GzipHeaderError(FormatError):
    """Invalid or unsupported gzip stream header."""


class DeflateError(FormatError):
    """Invalid Deflate block structure or compressed payload."""


class HuffmanError(DeflateError):
    """Code lengths do not define a valid (or efficient) Huffman code."""


class IntegrityError(ReproError):
    """Decompressed data does not match the stream's CRC-32 or ISIZE."""


class TruncatedError(FormatError):
    """The input ended in the middle of a structure."""

    def __init__(self, message: str = "unexpected end of input"):
        super().__init__(message)


class UsageError(ReproError):
    """The public API was used incorrectly (bad arguments, closed reader)."""


class WorkerCrashedError(ReproError):
    """A pool worker process died before finishing its task.

    Raised from the task's future (and therefore from
    :meth:`GzipChunkFetcher.request`) when a process-backend worker is
    killed — OOM, signal, or interpreter abort — and the pool's bounded
    requeue/respawn budget is exhausted, so the failure surfaces to the
    consumer instead of hanging the pipeline.
    """


class RecoveryError(ReproError):
    """Corrupted-file recovery could not locate any decodable region."""


class IndexIntegrityError(ReproError):
    """A persistent seek index failed an integrity or binding check.

    Raised by :mod:`repro.index.store` when an on-disk index cannot be
    trusted: bad magic or a future version, truncation, a window or
    footer CRC mismatch, a fingerprint that no longer matches the
    compressed source file, or a zlib error while inflating a lazily
    loaded window. ``check`` names the specific validation that failed
    (``"magic"``, ``"version"``, ``"truncated"``, ``"window_crc"``,
    ``"window_inflate"``, ``"window_length"``, ``"footer_crc"``,
    ``"fingerprint"``, ``"finalized"``, ``"order"``, ``"io"``,
    ``"injected"``); ``path`` and ``offset`` locate the damage when
    known. Under the default tolerant policy the reader records the
    failure and falls back to search-mode decode instead of letting
    this escape; strict imports surface it as CLI exit code 8.
    """

    def __init__(self, message: str, *, check: str = None, path=None,
                 offset: int = None, point: int = None):
        super().__init__(message)
        self.check = check
        self.path = path
        self.offset = offset
        self.point = point

    def __str__(self) -> str:
        message = super().__str__()
        return f"[{self.check}] {message}" if self.check else message


class NetworkError(ReproError):
    """A remote range read failed after the configured resilience budget.

    Raised by :mod:`repro.io.remote` when an HTTP range request (or any
    wrapped reader's ``pread``) keeps failing past the retry ladder, the
    per-read deadline, or while the circuit breaker is open. Carries the
    failing range so the CLI can print *which* bytes were unreachable:
    ``url`` names the origin (``None`` for non-HTTP sources), ``offset``/
    ``size`` the requested range, and ``attempts`` how many tries were
    burned before giving up. ``circuit_open`` marks fail-fast rejections
    issued without touching the wire.
    """

    def __init__(self, message: str, *, url: str = None, offset: int = None,
                 size: int = None, attempts: int = None,
                 circuit_open: bool = False):
        super().__init__(message)
        self.url = url
        self.offset = offset
        self.size = size
        self.attempts = attempts
        self.circuit_open = circuit_open


class SourceChangedError(NetworkError):
    """The remote object changed underneath an ongoing decode.

    Raised when a response's ETag/``Last-Modified`` validators (or the
    advertised size) no longer match what was captured at open — the
    same philosophy as the index store's fingerprint binding: mixing
    bytes from two object generations would produce silent garbage, so
    the mismatch surfaces as a structured error instead. Never retried
    and never absorbed by tolerant mode.
    """


class ChunkDecodeError(ReproError):
    """A chunk could not be produced after the full retry ladder.

    Carries the failure context the retry ladder accumulated — which
    chunk, where it starts, how many attempts were burned, and on which
    backend — so callers (and the CLI error message) can say more than
    "decode failed". The triggering error is chained as ``__cause__``.
    """

    def __init__(self, message: str, *, chunk_id: int = None,
                 start_bit: int = None, attempts: int = 1,
                 backend: str = None):
        super().__init__(message)
        self.chunk_id = chunk_id
        self.start_bit = start_bit
        self.attempts = attempts
        self.backend = backend


#: CLI exit codes per failure class (0 = success, 1 = other library error).
EXIT_FORMAT = 4
EXIT_INTEGRITY = 5
EXIT_WORKER_CRASH = 6
EXIT_RECOVERY = 7
EXIT_INDEX = 8
EXIT_NETWORK = 9


def exit_code_for(error: BaseException) -> int:
    """Map an exception to the CLI exit code for its failure class.

    Walks the ``__cause__`` chain so a wrapping :class:`ChunkDecodeError`
    reports the class of the error that actually broke the chunk.
    """
    seen = set()
    cursor = error
    while cursor is not None and id(cursor) not in seen:
        seen.add(id(cursor))
        if isinstance(cursor, NetworkError):
            return EXIT_NETWORK
        if isinstance(cursor, IndexIntegrityError):
            return EXIT_INDEX
        if isinstance(cursor, RecoveryError):
            return EXIT_RECOVERY
        if isinstance(cursor, WorkerCrashedError):
            return EXIT_WORKER_CRASH
        if isinstance(cursor, IntegrityError):
            return EXIT_INTEGRITY
        if isinstance(cursor, FormatError):
            return EXIT_FORMAT
        cursor = cursor.__cause__
    if isinstance(error, ChunkDecodeError):
        return EXIT_FORMAT
    return 1
