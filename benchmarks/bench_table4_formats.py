"""Table 4: comparison with other compression formats (Silesia).

Real part: the format pairings that exist in this repository — plain gzip
vs BGZF through the real reader, and stdlib bz2 as the bzip2 single-core
anchor — verifying the structural claim that BGZF parallelizes trivially
while plain gzip needs the two-stage machinery.

Simulated part: the full tool matrix at P in {1, 16, 128} with rapidgzip
rows from the pipeline simulator and zstd/bzip2/lz4 rows from the fitted
tool models, reproducing the paper's crossover: pzstd wins at 16 cores,
indexed rapidgzip is ~2x faster than pzstd at 128.
"""

import bz2

import pytest

from repro.datagen import generate_silesia_like
from repro.gz.writer import compress as gz_compress
from repro.reader import decompress_parallel
from repro.sim import (
    CostModel,
    TOOL_MODELS,
    WORKLOADS,
    simulate_rapidgzip,
    tool_bandwidth,
)

from conftest import fmt_bw

#: Paper Table 4 rows: (compressor, decompressor, P) -> GB/s.
PAPER_ROWS = {
    ("bzip2", "lbzip2", 1): 0.04492,
    ("bgzip", "bgzip", 1): 0.2977,
    ("gzip", "rapidgzip", 1): 0.1527,
    ("gzip", "rapidgzip-index", 1): 0.1528,
    ("gzip", "igzip", 1): 0.656,
    ("zstd", "zstd", 1): 0.820,
    ("pzstd", "pzstd", 1): 0.811,
    ("lz4", "lz4", 1): 1.337,
    ("bzip2", "lbzip2", 16): 0.667,
    ("bgzip", "bgzip", 16): 2.82,
    ("gzip", "rapidgzip", 16): 1.86,
    ("gzip", "rapidgzip-index", 16): 4.25,
    ("pzstd", "pzstd", 16): 6.78,
    ("bgzip", "bgzip", 128): 5.5,
    ("bzip2", "lbzip2", 128): 4.105,
    ("gzip", "rapidgzip", 128): 5.13,
    ("gzip", "rapidgzip-index", 128): 16.43,
    ("pzstd", "pzstd", 128): 8.8,
}


def _simulate_rapidgzip_row(cores: int, with_index: bool) -> float:
    model = CostModel.from_paper()
    # Table 4 file sizes: 424 MB uncompressed per core.
    return simulate_rapidgzip(
        cores, WORKLOADS["silesia"], model,
        uncompressed_size=424e6 * cores, with_index=with_index,
        decode_multiplier=0.62,  # Table 4 files are gzip-made (see table3)
    ).bandwidth


def test_table4_real_gzip_vs_bgzf(benchmark, reporter):
    data = generate_silesia_like(1024 * 1024, seed=6)
    gzip_blob = gz_compress(data, "gzip")
    bgzf_blob = gz_compress(data, "bgzf")

    import time

    def run():
        results = {}
        for name, blob in (("gzip", gzip_blob), ("bgzf", bgzf_blob)):
            start = time.perf_counter()
            assert decompress_parallel(blob, 2, chunk_size=128 * 1024) == data
            results[name] = len(data) / (time.perf_counter() - start)
        start = time.perf_counter()
        bz2.decompress(bz2.compress(data, 9))
        results["bz2 (stdlib)"] = len(data) / (time.perf_counter() - start)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table = reporter("Table 4 (real): format handling in this repository")
    table.row("format", "bandwidth", widths=[14, 14])
    for name, bandwidth in results.items():
        table.row(name, fmt_bw(bandwidth), widths=[14, 14])
    table.add("(BGZF uses the metadata fast path: no block finding, no "
              "markers, zlib per member)")
    table.emit()
    # BGZF must be faster than speculative gzip decoding at equal settings.
    assert results["bgzf"] > results["gzip"]


def test_table4_simulated_matrix(benchmark, reporter):
    def simulate():
        rows = {}
        for (compressor, decompressor, cores), paper in PAPER_ROWS.items():
            if decompressor == "rapidgzip":
                sim = _simulate_rapidgzip_row(cores, with_index=False)
            elif decompressor == "rapidgzip-index":
                sim = _simulate_rapidgzip_row(cores, with_index=True)
            else:
                sim = tool_bandwidth(compressor, decompressor, cores)
            rows[(compressor, decompressor, cores)] = (sim / 1e9, paper)
        return rows

    rows = benchmark.pedantic(simulate, rounds=1, iterations=1)
    table = reporter("Table 4 (simulated): decompression bandwidths, GB/s")
    table.row("com.", "decompressor", "P", "sim", "paper", "err%",
              widths=[7, 17, 4, 8, 8, 6])
    for (compressor, decompressor, cores), (sim, paper) in sorted(
        rows.items(), key=lambda item: (item[0][2], item[0][0])
    ):
        table.row(compressor, decompressor, cores, f"{sim:.3f}",
                  f"{paper:.3g}", f"{100 * (sim - paper) / paper:+.0f}",
                  widths=[7, 17, 4, 8, 8, 6])

    pzstd_128 = rows[("pzstd", "pzstd", 128)][0]
    rapidgzip_index_128 = rows[("gzip", "rapidgzip-index", 128)][0]
    pzstd_16 = rows[("pzstd", "pzstd", 16)][0]
    rapidgzip_index_16 = rows[("gzip", "rapidgzip-index", 16)][0]
    table.add()
    table.add(f"crossover: @16 pzstd {pzstd_16:.2f} > rapidgzip-index "
              f"{rapidgzip_index_16:.2f}; @128 rapidgzip-index "
              f"{rapidgzip_index_128:.2f} = {rapidgzip_index_128 / pzstd_128:.1f}x "
              "pzstd (paper: 'twice as fast')")
    table.emit()

    # The paper's headline crossover must reproduce.
    assert pzstd_16 > rapidgzip_index_16
    assert 1.5 < rapidgzip_index_128 / pzstd_128 < 2.6
    # Every row within 25% of the paper's number.
    for key, (sim, paper) in rows.items():
        assert abs(sim - paper) / paper < 0.25, (key, sim, paper)


def test_table4_single_core_rapidgzip_vs_igzip(benchmark, reporter):
    # Paper: single-threaded rapidgzip 153 MB/s; igzip 4.3x faster.
    def compute():
        rapidgzip = _simulate_rapidgzip_row(1, with_index=False)
        igzip = tool_bandwidth("gzip", "igzip", 1)
        return rapidgzip, igzip

    rapidgzip, igzip = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = reporter("Table 4: single-core anchors")
    table.add(f"rapidgzip P=1: {fmt_bw(rapidgzip)} (paper 152.7 MB/s)")
    table.add(f"igzip P=1: {fmt_bw(igzip)} (paper 656 MB/s, 4.3x rapidgzip)")
    table.emit()
    assert 3.0 < igzip / rapidgzip < 5.5
