"""Figure 11: weak-scaling decompression of a (synthetic) FASTQ file.

Paper findings: rapidgzip without an index scales to ~48 cores and stops
at 4.9 GB/s; with an index (and pugz without output synchronization, which
we cover in the simulator) scaling continues to 128 cores. pugz with
synchronization reaches 1.4 GB/s at 16 cores and *errors out* at 96/128.
"""

import pytest

from repro.datagen import generate_fastq
from repro.sim import CostModel, WORKLOADS, simulate_pugz, simulate_rapidgzip

from _scaling import PAPER_CORES, REAL_THREADS, make_corpus, measured_model, real_decompression_bandwidth
from conftest import fmt_bw


def test_fig11_real_small_scale(benchmark, reporter, backends):
    data, blob = make_corpus(generate_fastq, 2 * 1024 * 1024)

    def sweep():
        return {
            (backend, threads): real_decompression_bandwidth(
                blob, parallelization=threads, chunk_size=128 * 1024,
                repeats=1, backend=backend,
            )
            for backend in backends
            for threads in REAL_THREADS
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = reporter("Figure 11 (real): FASTQ, this implementation")
    table.row("backend", "threads", "bandwidth", widths=[10, 8, 14])
    for (backend, threads), bandwidth in results.items():
        table.row(backend, threads, fmt_bw(bandwidth), widths=[10, 8, 14])
    table.emit()


def test_fig11_simulated_sweep(benchmark, reporter):
    paper_model = CostModel.from_paper()
    self_model = measured_model()
    workload = WORKLOADS["fastq"]

    def simulate(model):
        rows = {}
        for cores in PAPER_CORES:
            size = 362e6 * cores  # paper: 362 MB uncompressed per core
            rows[cores] = {
                "rapidgzip": simulate_rapidgzip(
                    cores, workload, model, uncompressed_size=size
                ).bandwidth,
                "rapidgzip-index": simulate_rapidgzip(
                    cores, workload, model, uncompressed_size=size, with_index=True
                ).bandwidth,
            }
        return rows

    paper_rows = benchmark.pedantic(simulate, args=(paper_model,), rounds=1,
                                    iterations=1)
    self_rows = simulate(self_model)

    table = reporter("Figure 11 (simulated): FASTQ weak scaling, GB/s")
    table.row("P", "rapidgzip", "rg-index", "self-cal rapidgzip",
              widths=[4, 10, 10, 20])
    for cores in PAPER_CORES:
        table.row(
            cores,
            f"{paper_rows[cores]['rapidgzip'] / 1e9:.2f}",
            f"{paper_rows[cores]['rapidgzip-index'] / 1e9:.2f}",
            f"{self_rows[cores]['rapidgzip'] / 1e6:.2f} MB/s",
            widths=[4, 10, 10, 20],
        )
    peak = max(row["rapidgzip"] for row in paper_rows.values()) / 1e9
    knee_48_64 = paper_rows[64]["rapidgzip"] / paper_rows[48]["rapidgzip"]
    knee_64_128 = paper_rows[128]["rapidgzip"] / paper_rows[64]["rapidgzip"]
    table.add()
    table.add(f"no-index peak: {peak:.2f} GB/s (paper: 4.9 GB/s)")
    table.add(f"scaling 48->64: +{100 * (knee_48_64 - 1):.0f}%, "
              f"64->128: +{100 * (knee_64_128 - 1):.0f}% "
              "(paper: stops scaling above ~48)")
    table.emit()

    assert abs(peak - 4.9) / 4.9 < 0.25
    assert knee_64_128 < 1.12  # flat well before 128
    # With-index keeps scaling well past the no-index knee, like pugz-async
    # in the paper (our index curve saturates on the serial bound ~96).
    assert paper_rows[128]["rapidgzip-index"] > paper_rows[48]["rapidgzip-index"] * 1.4
    assert self_rows[128]["rapidgzip-index"] > self_rows[128]["rapidgzip"]
