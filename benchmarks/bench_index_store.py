"""Persistent index cache: cold open vs warm open (paper §3.3, Fig. 10).

The paper's index-assisted mode roughly doubles decode bandwidth by
delegating chunk decode to zlib instead of running the two-stage marker
decoder. The persistent cache makes that win survive the process: the
first (cold) open pays the search-mode decode and exports the index
atomically; every later (warm) open imports it, validates it, and decodes
index-assisted from the first byte.

Reported per corpus:

* cold bandwidth — search mode + index build + atomic export;
* warm bandwidth — fingerprint-validated import + zlib-delegated decode;
* the warm/cold ratio, and the count of zlib-delegated chunks as proof
  the fast path actually engaged (asserted, not just printed).
"""

import gzip as stdlib_gzip
import os
import shutil
import tempfile
import time

from repro.datagen import generate_base64, generate_silesia_like
from repro.reader import ParallelGzipReader

from conftest import fmt_bw

CORPUS_SIZE = 4 << 20
CHUNK_SIZE = 128 * 1024
THREADS = 4
REPS = 3


def _drain(reader) -> int:
    total = 0
    while True:
        piece = reader.read(1 << 20)
        if not piece:
            break
        total += len(piece)
    return total


def _timed_read(path: str, cache_dir: str) -> tuple:
    reader = ParallelGzipReader(
        path, parallelization=THREADS, chunk_size=CHUNK_SIZE,
        index_cache=cache_dir,
    )
    begin = time.perf_counter()
    total = _drain(reader)
    elapsed = time.perf_counter() - begin
    stats = reader.statistics()["index"]
    reader.close()
    return total / elapsed, stats


def test_index_store_cold_vs_warm(benchmark, reporter):
    corpora = {
        "base64": generate_base64(CORPUS_SIZE, seed=3),
        "silesia": generate_silesia_like(CORPUS_SIZE, seed=4),
    }

    def sweep():
        rows = {}
        root = tempfile.mkdtemp(prefix="bench-index-store-")
        try:
            for name, data in corpora.items():
                path = os.path.join(root, f"{name}.gz")
                with open(path, "wb") as sink:
                    sink.write(stdlib_gzip.compress(data, 6))
                cache = os.path.join(root, f"{name}-cache")
                best_cold, best_warm = 0.0, 0.0
                warm_stats = None
                for _ in range(REPS):
                    shutil.rmtree(cache, ignore_errors=True)
                    cold, cold_stats = _timed_read(path, cache)
                    assert cold_stats["exported"], "cold open must export"
                    warm, warm_stats = _timed_read(path, cache)
                    assert warm_stats["imported"], "warm open must import"
                    best_cold = max(best_cold, cold)
                    best_warm = max(best_warm, warm)
                rows[name] = (best_cold, best_warm, warm_stats)
        finally:
            shutil.rmtree(root, ignore_errors=True)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = reporter("Index store: cold open vs warm open")
    table.row("corpus", "cold", "warm", "ratio", "zlib chunks",
              widths=[8, 12, 12, 7, 12])
    for name, (cold, warm, stats) in rows.items():
        table.row(
            name, fmt_bw(cold), fmt_bw(warm), f"{warm / cold:.2f}x",
            stats["index_chunks"], widths=[8, 12, 12, 7, 12],
        )
    table.emit()
    for name, (cold, warm, stats) in rows.items():
        assert stats["index_chunks"] > 0, (
            f"{name}: warm open never used the zlib-delegated path"
        )
        assert stats["fallbacks"] == 0
        assert stats["load_failures"] == 0
