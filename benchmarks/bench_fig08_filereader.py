"""Figure 8: SharedFileReader parallel strided reads.

The paper reads a 1 GiB file from /dev/shm with 1..128 pinned threads and
plateaus at 18 GB/s from 4 threads on. Here: a scaled-down file (tmpfs when
available), 1..8 threads — ``os.pread`` on a shared descriptor releases the
GIL, so real thread scaling is measurable even in Python.
"""

import os
import pathlib
import tempfile

import numpy as np
import pytest

from repro.io import strided_read_benchmark

from conftest import fmt_bw

THREADS = [1, 2, 4, 8]
FILE_SIZE = 64 * 1024 * 1024

_results = {}


@pytest.fixture(scope="module")
def test_file():
    directory = "/dev/shm" if os.path.isdir("/dev/shm") else tempfile.gettempdir()
    path = pathlib.Path(directory) / "repro_fig08.bin"
    rng = np.random.default_rng(0)
    path.write_bytes(rng.integers(0, 256, size=FILE_SIZE, dtype=np.uint8).tobytes())
    yield path
    path.unlink(missing_ok=True)


@pytest.mark.parametrize("threads", THREADS)
def test_strided_read(benchmark, test_file, threads):
    result = benchmark.pedantic(
        strided_read_benchmark,
        args=(str(test_file),),
        kwargs={"num_threads": threads, "chunk_size": 128 * 1024},
        rounds=3,
        iterations=1,
    )
    assert result["bytes"] == FILE_SIZE
    _results[threads] = FILE_SIZE / benchmark.stats.stats.min


def test_report(benchmark, reporter):
    benchmark.pedantic(lambda: None, rounds=1)
    table = reporter("Figure 8: shared-file strided read bandwidth")
    table.row("threads", "bandwidth", widths=[8, 14])
    for threads in THREADS:
        if threads in _results:
            table.row(threads, fmt_bw(_results[threads]), widths=[8, 14])
    table.add()
    table.add("Paper (Fig. 8): 18 GB/s plateau from 4 threads; reading only")
    table.add("becomes the bottleneck beyond ~128 decompression cores.")
    table.add(f"(this container exposes {os.cpu_count()} core(s); thread counts")
    table.add("beyond that measure pread overlap, not CPU scaling)")
    table.emit()
    assert _results[max(_results)] > 0.5 * _results[1]  # no pathological drop
