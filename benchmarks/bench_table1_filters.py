"""Table 1: empirical filter frequencies of the Dynamic Block finder.

The paper applies the finder to 10^12 random bit positions and reports how
many candidates each §3.4.2 check eliminates. We test a scaled-down number
of positions (the *rates per position* are sample-size invariant) and
compare against the paper's rates. Also reproduces §3.4.1's NC-finder
false-positive rate of one per (514 +- 23) KiB.
"""

import numpy as np
import pytest

from repro.blockfinder import DynamicBlockFinderCustomTrial, scan_nc_candidates
from repro.deflate import FilterStage

#: Paper counts per 10^12 tested positions (Table 1).
PAPER_RATES = {
    FilterStage.FINAL_BLOCK: 500_000.1e6 / 1e12,
    FilterStage.COMPRESSION_TYPE: 375_000.0e6 / 1e12,
    FilterStage.PRECODE_SIZE: 7_812.47e6 / 1e12,
    FilterStage.PRECODE_INVALID: 77_451.6e6 / 1e12,
    FilterStage.PRECODE_NON_OPTIMAL: 39_256.9e6 / 1e12,
    FilterStage.PRECODE_DATA: 386.66e6 / 1e12,
    FilterStage.DISTANCE_INVALID: 14.291e6 / 1e12,
    FilterStage.DISTANCE_NON_OPTIMAL: 77.126e6 / 1e12,
    FilterStage.LITERAL_INVALID: 340.6e3 / 1e12,
    FilterStage.LITERAL_NON_OPTIMAL: 517.2e3 / 1e12,
}

POSITIONS = 400_000  # bit positions tested per repetition
REPEATS = 3


def run_filter_census(seed: int) -> dict:
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, size=POSITIONS // 8 + 64, dtype=np.uint8).tobytes()
    counter = {}
    finder = DynamicBlockFinderCustomTrial(data, counter=counter)
    found = list(finder.iter_candidates(0, until=POSITIONS))
    counter["valid"] = len(found)
    return counter


def test_table1_filter_frequencies(benchmark, reporter):
    censuses = [run_filter_census(seed) for seed in range(REPEATS - 1)]
    censuses.append(benchmark.pedantic(run_filter_census, args=(REPEATS - 1,),
                                       rounds=1, iterations=1))
    total_positions = POSITIONS * REPEATS

    table = reporter("Table 1: Dynamic Block finder filter frequencies")
    table.row("check", "measured rate", "paper rate", "ratio",
              widths=[30, 14, 14, 7])
    for stage in FilterStage.ORDER:
        measured = sum(c.get(stage, 0) for c in censuses) / total_positions
        paper = PAPER_RATES[stage]
        ratio = measured / paper if paper else float("inf")
        table.row(stage, f"{measured:.3e}", f"{paper:.3e}",
                  f"{ratio:.2f}" if measured else "-", widths=[30, 14, 14, 7])
        # The first six checks have high enough rates to verify tightly at
        # this sample size; late checks fire ~1e-8 and need 10^12 samples.
        if paper > 1e-4:
            assert 0.7 < ratio < 1.4, (stage, measured, paper)
    valid = sum(c.get("valid", 0) for c in censuses)
    table.row("valid Deflate headers",
              f"{valid / total_positions:.3e}", f"{202 / 1e12:.3e}", "-",
              widths=[30, 14, 14, 7])
    table.add()
    table.add(f"({total_positions:,} positions tested; paper used 1.2e13)")
    table.emit()


def test_nc_finder_false_positive_rate(benchmark, reporter):
    # §3.4.1: (2040 +- 90) false positives per GiB == one per (514 +- 23) KiB.
    def census():
        rates = []
        for seed in range(4):
            rng = np.random.default_rng(100 + seed)
            sample = rng.integers(0, 256, size=8 << 20, dtype=np.uint8).tobytes()
            count = scan_nc_candidates(sample).size
            rates.append((len(sample) / 1024) / count)
        return rates

    rates = benchmark.pedantic(census, rounds=1, iterations=1)
    mean = sum(rates) / len(rates)
    table = reporter("§3.4.1: NC-finder false positive spacing on random data")
    table.row("sample", "KiB per false positive", widths=[8, 24])
    for index, rate in enumerate(rates):
        table.row(index, f"{rate:.0f}", widths=[8, 24])
    table.add(f"mean: {mean:.0f} KiB   paper: 514 +- 23 KiB")
    table.emit()
    assert 400 < mean < 640
