"""Ablations of the design choices DESIGN.md calls out.

Not part of the paper's tables, but each ablation isolates one mechanism
the paper credits for its performance:

* **prefetch strategy** — adaptive vs fixed vs none (cache hit rates on
  sequential and strided access),
* **prefetch cache size** — the 2P sizing rule vs a starved cache,
* **marker fallback** — the §3.3 fall-back to conventional decoding once
  the window is marker-free (decode bandwidth on marker-free data),
* **precode quick-reject LUT** — §3.4.2's histogram pre-filter,
* **zlib delegation** — the index fast path vs forcing the custom decoder.
"""

import random
import time

import pytest

from repro.cache import FetchNextAdaptive, FetchNextFixed, LRUCache, PrefetchStrategy
from repro.datagen import generate_base64
from repro.fetcher import GzipChunkFetcher
from repro.gz.writer import compress as gz_compress
from repro.io import BitReader
from repro.gz.header import parse_gzip_header

from conftest import fmt_bw


class NoPrefetch(PrefetchStrategy):
    def prefetch(self, history, degree):
        return []


def drive_fetcher(blob: bytes, strategy, parallelization=3, chunk_size=48 * 1024):
    fetcher = GzipChunkFetcher(
        blob, parallelization=parallelization, chunk_size=chunk_size,
        strategy=strategy,
    )
    try:
        reader = BitReader(blob)
        parse_gzip_header(reader)
        start, window = reader.tell(), b""
        while True:
            result = fetcher.request(start, window)
            if result.end_bit is None:
                break
            window = (
                b"" if result.end_is_stream_start
                else result.payload.window_at_end(window)
            )
            start = result.end_bit
        return fetcher.statistics()
    finally:
        fetcher.close()


def test_ablation_prefetch_strategy(benchmark, reporter):
    data = generate_base64(1024 * 1024, seed=20)
    blob = gz_compress(data, "pigz")

    def run():
        return {
            "adaptive (paper default)": drive_fetcher(blob, FetchNextAdaptive()),
            "fixed-next": drive_fetcher(blob, FetchNextFixed()),
            "no prefetch": drive_fetcher(blob, NoPrefetch()),
        }

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    table = reporter("Ablation: prefetch strategy (sequential full read)")
    table.row("strategy", "prefetch hits", "on-demand", "speculative",
              widths=[26, 14, 10, 12])
    for name, stat in stats.items():
        table.row(name, stat["prefetch_cache"]["hits"], stat["on_demand_decodes"],
                  stat["speculative_submitted"], widths=[26, 14, 10, 12])
    table.add("(no prefetch => every chunk is an on-demand decode; the")
    table.add(" adaptive strategy hides chunk latency behind the pool)")
    table.emit()
    assert stats["no prefetch"]["on_demand_decodes"] > (
        stats["adaptive (paper default)"]["on_demand_decodes"]
    )
    assert stats["adaptive (paper default)"]["prefetch_cache"]["hits"] > 0


def test_ablation_prefetch_cache_size(benchmark, reporter):
    data = generate_base64(1024 * 1024, seed=21)
    blob = gz_compress(data, "pigz")

    def run(cache_size):
        fetcher = GzipChunkFetcher(
            blob, parallelization=3, chunk_size=48 * 1024,
            prefetch_cache_size=cache_size,
        )
        try:
            reader = BitReader(blob)
            parse_gzip_header(reader)
            start, window = reader.tell(), b""
            while True:
                result = fetcher.request(start, window)
                if result.end_bit is None:
                    break
                window = result.payload.window_at_end(window)
                start = result.end_bit
            return fetcher.statistics()
        finally:
            fetcher.close()

    def sweep():
        return {size: run(size) for size in (1, 2, 6, 12)}

    stats = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = reporter("Ablation: prefetch cache capacity (paper: 2 x P)")
    table.row("capacity", "hits", "evictions", "on-demand", widths=[9, 8, 10, 10])
    for size, stat in stats.items():
        cache = stat["prefetch_cache"]
        table.row(size, cache["hits"], cache["evictions"],
                  stat["on_demand_decodes"], widths=[9, 8, 10, 10])
    table.emit()
    # A starved cache (capacity 1) must lose speculative results.
    assert stats[1]["on_demand_decodes"] >= stats[6]["on_demand_decodes"]


def test_ablation_marker_fallback(benchmark, reporter):
    """§3.3 fallback: decode marker-free data with and without it."""
    import zlib

    from repro.deflate.inflate import TwoStageStreamDecoder
    from repro.deflate import MAX_WINDOW_SIZE

    rng = random.Random(30)
    data = bytes(rng.randrange(256) for _ in range(256 * 1024))
    compressed = zlib.compress(data, 1)[2:-4]

    def decode(disable_fallback: bool) -> float:
        start = time.perf_counter()
        decoder = TwoStageStreamDecoder(window=None)
        if disable_fallback:
            # Pin the conservative marker bound so the trailing window
            # never looks clean — the decoder stays in 16-bit mode.
            decoder._maybe_fall_back = lambda: None
        reader = BitReader(compressed)
        while not decoder.read_and_decode_block(reader).final:
            pass
        payload = decoder.finish()
        elapsed = time.perf_counter() - start
        assert payload.materialize(b"") == data
        return len(data) / elapsed

    with_fallback = benchmark.pedantic(decode, args=(False,), rounds=1,
                                       iterations=1)
    without_fallback = decode(True)
    table = reporter("Ablation: fallback to conventional decoding (§3.3)")
    table.row("variant", "bandwidth", widths=[22, 14])
    table.row("with fallback", fmt_bw(with_fallback), widths=[22, 14])
    table.row("fallback disabled", fmt_bw(without_fallback), widths=[22, 14])
    table.add("(paper: the fallback is what makes base64 data behave like")
    table.add(" single-stage decompression, §4.4)")
    table.emit()
    assert with_fallback > without_fallback


def test_ablation_quick_reject_lut(benchmark, reporter):
    """§3.4.2 histogram pre-filter: rejection rate on random headers."""
    import numpy as np

    from repro.huffman import classify_packed_histogram, packed_histogram, quick_reject
    from repro.huffman.canonical import CodeClassification

    rng = np.random.default_rng(40)
    samples = [
        (int(bits), int(count))
        for bits, count in zip(
            rng.integers(0, 1 << 57, size=4000), rng.integers(4, 20, size=4000)
        )
    ]

    def census():
        rejected_fast = 0
        rejected_exact = 0
        for bits, count in samples:
            packed = packed_histogram(bits, count)
            if quick_reject(packed):
                rejected_fast += 1
            if classify_packed_histogram(packed) is not CodeClassification.VALID:
                rejected_exact += 1
        return rejected_fast, rejected_exact

    fast, exact = benchmark.pedantic(census, rounds=1, iterations=1)
    table = reporter("Ablation: precode quick-reject LUT (§3.4.2)")
    table.add(f"random precodes rejected by 20-bit LUT alone: {fast}/{len(samples)}")
    table.add(f"rejected by the exact walk:                   {exact}/{len(samples)}")
    table.add(f"LUT coverage of exact filter: {fast / max(exact, 1):.0%} "
              "at a single table lookup")
    table.emit()
    assert fast <= exact  # sound: never rejects a valid code
    assert fast > 0.5 * exact  # and catches most invalid ones early


def test_ablation_zlib_delegation(benchmark, reporter):
    """Index fast path: zlib delegation vs forcing the custom decoder."""
    import io

    from repro.index import GzipIndex
    from repro.reader import ParallelGzipReader

    data = generate_base64(1024 * 1024, seed=22)
    blob = gz_compress(data, "gzip", level=1)
    with ParallelGzipReader(blob, chunk_size=64 * 1024) as reader:
        sink = io.BytesIO()
        reader.export_index(sink)
    index = GzipIndex.load(sink.getvalue())

    def timed_read(**kwargs) -> float:
        start = time.perf_counter()
        with ParallelGzipReader(blob, parallelization=2, **kwargs) as reader:
            assert reader.read() == data
        return len(data) / (time.perf_counter() - start)

    indexed = benchmark.pedantic(
        lambda: timed_read(index=index), rounds=1, iterations=1
    )
    searched = timed_read(chunk_size=64 * 1024)
    table = reporter("Ablation: zlib delegation via the index (§3.3)")
    table.row("mode", "bandwidth", widths=[24, 14])
    table.row("index (zlib delegated)", fmt_bw(indexed), widths=[24, 14])
    table.row("no index (custom decode)", fmt_bw(searched), widths=[24, 14])
    table.add(f"speedup: {indexed / searched:.1f}x (paper: 'more than twice')")
    table.emit()
    assert indexed > 2 * searched
