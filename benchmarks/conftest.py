"""Shared infrastructure for the paper-reproduction benchmarks.

Every ``bench_*`` module regenerates one table or figure from the paper's
evaluation section (see DESIGN.md §4 for the index). Results are printed
as paper-style tables AND appended to ``benchmarks/results/<name>.txt`` so
EXPERIMENTS.md can quote them.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--backend",
        default="both",
        choices=["auto", "threads", "processes", "both"],
        help="worker backend(s) the real-decompression benchmarks sweep "
        "(default: both threads and processes)",
    )


@pytest.fixture
def backends(request):
    """Concrete backend list selected by --backend."""
    choice = request.config.getoption("--backend")
    return ["threads", "processes"] if choice == "both" else [choice]


class TableReporter:
    """Collects rows and emits an aligned paper-style table."""

    def __init__(self, name: str, title: str):
        self.name = name
        self.title = title
        self.lines = []

    def add(self, line: str = "") -> None:
        self.lines.append(line)

    def row(self, *cells, widths=None) -> None:
        if widths is None:
            widths = [14] * len(cells)
        self.lines.append(
            "  ".join(str(c).rjust(w) for c, w in zip(cells, widths))
        )

    def emit(self) -> str:
        header = f"=== {self.title} ==="
        text = "\n".join([header, *self.lines, ""])
        print("\n" + text)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{self.name}.txt").write_text(text + "\n")
        return text


@pytest.fixture
def reporter(request):
    def make(title: str) -> TableReporter:
        slug = "".join(
            ch if ch.isalnum() else "_" for ch in title.split(":")[0].lower()
        ).strip("_")
        return TableReporter(
            f"{request.node.module.__name__}__{slug}", title
        )

    return make


def fmt_bw(bytes_per_second: float) -> str:
    """Human bandwidth: GB/s above 1e9, else MB/s."""
    if bytes_per_second >= 1e9:
        return f"{bytes_per_second / 1e9:.2f} GB/s"
    if bytes_per_second >= 1e6:
        return f"{bytes_per_second / 1e6:.2f} MB/s"
    return f"{bytes_per_second / 1e3:.1f} kB/s"
