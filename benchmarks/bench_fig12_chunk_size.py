"""Figure 12: influence of the chunk size (16 cores, 8 GiB of base64).

Paper findings: a clear interior optimum — 4 MiB for rapidgzip, 32 MiB for
pugz (8x larger, owing to the 3.3x slower block finder + two-stage
overheads); degradation at small chunks (block-finder overhead per chunk)
and at large chunks (too few chunks for even work distribution), with pugz
stabilizing at >=512 MiB because it caps chunks at file/threads = 389 MiB.

Also sweeps the *real* implementation's chunk size on a small corpus: the
per-chunk overhead trend at small chunk sizes is directly measurable even
single-core.
"""

import pytest

from repro.datagen import generate_base64
from repro.sim import CostModel, WORKLOADS, simulate_pugz, simulate_rapidgzip

from _scaling import make_corpus, measured_model, real_decompression_bandwidth
from conftest import fmt_bw

SIM_CHUNK_SIZES_MIB = [0.125, 0.25, 0.5, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512]
REAL_CHUNK_SIZES_KIB = [8, 32, 128, 512, 2048]


def test_fig12_real_chunk_size_sweep(benchmark, reporter):
    data, blob = make_corpus(generate_base64, 3 * 1024 * 1024)

    def sweep():
        return {
            size_kib: real_decompression_bandwidth(
                blob, parallelization=2, chunk_size=size_kib * 1024, repeats=1
            )
            for size_kib in REAL_CHUNK_SIZES_KIB
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = reporter("Figure 12 (real): chunk size sweep, this implementation")
    table.row("chunk size", "bandwidth", widths=[12, 14])
    for size_kib, bandwidth in results.items():
        table.row(f"{size_kib} KiB", fmt_bw(bandwidth), widths=[12, 14])
    table.add("(small chunks pay per-chunk block-finder + orchestration cost)")
    table.emit()
    # The smallest chunk size must be measurably slower than the best.
    assert max(results.values()) > 1.2 * results[REAL_CHUNK_SIZES_KIB[0]]


def test_fig12_simulated_sweep(benchmark, reporter):
    model = CostModel.from_paper()
    workload = WORKLOADS["base64"]
    file_size = 8 * 1024**3  # paper: 8 GiB of base64 data

    def simulate():
        rows = {}
        for size_mib in SIM_CHUNK_SIZES_MIB:
            chunk = size_mib * 1024 * 1024
            rows[size_mib] = {
                "rapidgzip": simulate_rapidgzip(
                    16, workload, model,
                    uncompressed_size=file_size, chunk_size=chunk,
                ).bandwidth,
                "pugz": simulate_pugz(
                    16, workload, model,
                    uncompressed_size=file_size, chunk_size=chunk,
                    synchronized=False,
                ).bandwidth,
            }
        return rows

    rows = benchmark.pedantic(simulate, rounds=1, iterations=1)
    table = reporter("Figure 12 (simulated): chunk size sweep @16 cores, GB/s")
    table.row("chunk size", "rapidgzip", "pugz", widths=[12, 10, 10])
    for size_mib in SIM_CHUNK_SIZES_MIB:
        table.row(
            f"{size_mib:g} MiB",
            f"{rows[size_mib]['rapidgzip'] / 1e9:.2f}",
            f"{rows[size_mib]['pugz'] / 1e9:.2f}",
            widths=[12, 10, 10],
        )
    best_rapidgzip = max(SIM_CHUNK_SIZES_MIB,
                         key=lambda s: rows[s]["rapidgzip"])
    # Above ~389 MiB pugz's chunk cap (file/threads) takes over and the
    # distribution becomes one perfectly balanced chunk per thread — that
    # regime is not a "chunk size optimum", so judge pugz's optimum below
    # the cap, like the paper's figure does.
    uncapped = [s for s in SIM_CHUNK_SIZES_MIB if s <= 256]
    best_pugz = max(uncapped, key=lambda s: rows[s]["pugz"])
    table.add()
    table.add(f"optimum: rapidgzip {best_rapidgzip:g} MiB (paper 4 MiB), "
              f"pugz {best_pugz:g} MiB below the cap (paper 32 MiB)")
    table.add("pugz stays stable at >=512 MiB: chunk capped to file/threads "
              "= 389 MiB, one balanced chunk per thread (paper §4.7)")
    table.emit()

    # Shape assertions: interior optima, rapidgzip's optimum smaller than
    # pugz's, degradation at both extremes for rapidgzip.
    assert 1 <= best_rapidgzip <= 16
    assert best_pugz >= best_rapidgzip
    assert rows[best_rapidgzip]["rapidgzip"] > 1.5 * rows[0.125]["rapidgzip"]
    assert rows[best_rapidgzip]["rapidgzip"] > 1.5 * rows[512]["rapidgzip"]
    # pugz at 512 MiB does NOT degrade like rapidgzip (the cap).
    assert rows[512]["pugz"] > rows[512]["rapidgzip"]
