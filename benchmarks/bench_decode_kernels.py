"""Single-thread Deflate decode-kernel throughput: fused vs legacy.

Measures the block-decode hot loop in isolation (no chunking, no workers)
in both modes the pipeline uses:

* **conventional** — decode to bytes with a known window
  (:func:`repro.deflate.inflate`), the index-assisted path;
* **marker** — two-stage decode to 16-bit symbols with an unknown window
  (:class:`repro.deflate.TwoStageStreamDecoder`), the search-mode path
  that dominates no-index decompression (paper §4.1).

Fused and legacy timings are interleaved inside the same repetition loop
and the best-of-N is reported, which cancels machine-load drift that
single-shot timings on a small container are exposed to (±10% observed).

Emits the paper-style table, and writes ``BENCH_decode_kernels.json`` at
the repo root so the speedup trajectory is tracked across revisions.
"""

import json
import pathlib
import time
import zlib

from repro.datagen import generate_base64, generate_silesia_like
from repro.deflate import TwoStageStreamDecoder, inflate
from repro.io import BitReader

from conftest import fmt_bw

CORPUS_SIZE = 4 << 20
LEVEL = 6
REPS = 8
TRAJECTORY_PATH = pathlib.Path(__file__).parent.parent / "BENCH_decode_kernels.json"

_results = {}


def _raw_deflate(data: bytes) -> bytes:
    compressor = zlib.compressobj(LEVEL, zlib.DEFLATED, -15)
    return compressor.compress(data) + compressor.flush()


def _corpora():
    return {
        "base64": generate_base64(CORPUS_SIZE, seed=1),
        "silesia": generate_silesia_like(CORPUS_SIZE, seed=2),
    }


def _decode_conventional(blob: bytes, decoder: str) -> int:
    return len(inflate(blob, decoder=decoder).data)


def _decode_marker(blob: bytes, decoder: str) -> int:
    reader = BitReader(blob)
    stream = TwoStageStreamDecoder(window=None, decoder=decoder)
    while True:
        header = stream.read_and_decode_block(reader)
        if header.final:
            break
    stream.finish()
    return stream.produced


def _interleaved_best(decode, blob: bytes) -> dict:
    """Best-of-REPS seconds per decoder, fused/legacy alternating."""
    best = {"fused": float("inf"), "legacy": float("inf")}
    for _ in range(REPS):
        for decoder in ("fused", "legacy"):
            start = time.perf_counter()
            decode(blob, decoder)
            best[decoder] = min(best[decoder], time.perf_counter() - start)
    return best


def _measure(name: str, data: bytes):
    blob = _raw_deflate(data)
    for mode, decode in (
        ("conventional", _decode_conventional),
        ("marker", _decode_marker),
    ):
        best = _interleaved_best(decode, blob)
        _results[(name, mode)] = {
            decoder: len(data) / seconds for decoder, seconds in best.items()
        }


def test_decode_kernels(benchmark, reporter):
    corpora = _corpora()
    benchmark.pedantic(
        lambda: [_measure(name, data) for name, data in corpora.items()],
        rounds=1,
        iterations=1,
    )

    table = reporter("Decode kernels: single-thread fused vs legacy")
    table.row("corpus", "mode", "fused", "legacy", "speedup",
              widths=[8, 14, 12, 12, 8])
    trajectory = {
        "corpus_size": CORPUS_SIZE,
        "level": LEVEL,
        "reps": REPS,
        "results": {},
    }
    for (name, mode), rates in _results.items():
        speedup = rates["fused"] / rates["legacy"]
        table.row(
            name, mode, fmt_bw(rates["fused"]), fmt_bw(rates["legacy"]),
            f"{speedup:.2f}x", widths=[8, 14, 12, 12, 8],
        )
        trajectory["results"][f"{name}/{mode}"] = {
            "fused_mb_s": round(rates["fused"] / 1e6, 3),
            "legacy_mb_s": round(rates["legacy"] / 1e6, 3),
            "speedup": round(speedup, 3),
        }
    table.add()
    table.add(f"{CORPUS_SIZE >> 20} MiB per corpus, zlib level {LEVEL}, "
              f"interleaved best-of-{REPS}")
    table.emit()

    TRAJECTORY_PATH.write_text(json.dumps(trajectory, indent=2) + "\n")

    # Regression guard: the fused kernels must stay decisively ahead in
    # every mode (the committed results show >=1.5x; the floor here is
    # lower only to absorb shared-container noise).
    for (name, mode), rates in _results.items():
        assert rates["fused"] > 1.25 * rates["legacy"], (name, mode, rates)
