"""Single-thread Deflate decode-kernel throughput: fused vs batched vs legacy.

Measures the block-decode hot loop in isolation (no chunking, no workers)
in both modes the pipeline uses:

* **conventional** — decode to bytes with a known window
  (:func:`repro.deflate.inflate`), the index-assisted path;
* **marker** — two-stage decode to 16-bit symbols with an unknown window
  (:class:`repro.deflate.TwoStageStreamDecoder`), the search-mode path
  that dominates no-index decompression (paper §4.1).

All decoder timings are interleaved inside the same repetition loop and
the best-of-N is reported, which cancels machine-load drift that
single-shot timings on a small container are exposed to (±10% observed).

Emits the paper-style table, and appends to ``BENCH_decode_kernels.json``
at the repo root: the file keeps one *trajectory entry per decoder set*,
so the fused-vs-legacy numbers from before the batched tier existed stay
on record next to the current three-way measurement.
"""

import json
import pathlib
import time
import zlib

from repro.datagen import generate_base64, generate_silesia_like
from repro.deflate import TwoStageStreamDecoder, inflate
from repro.io import BitReader

from conftest import fmt_bw

CORPUS_SIZE = 4 << 20
LEVEL = 6
REPS = 8
DECODERS = ("fused", "batched", "legacy")
TRAJECTORY_PATH = pathlib.Path(__file__).parent.parent / "BENCH_decode_kernels.json"

_results = {}


def _raw_deflate(data: bytes) -> bytes:
    compressor = zlib.compressobj(LEVEL, zlib.DEFLATED, -15)
    return compressor.compress(data) + compressor.flush()


def _corpora():
    return {
        "base64": generate_base64(CORPUS_SIZE, seed=1),
        "silesia": generate_silesia_like(CORPUS_SIZE, seed=2),
    }


def _decode_conventional(blob: bytes, decoder: str) -> int:
    return len(inflate(blob, decoder=decoder).data)


def _decode_marker(blob: bytes, decoder: str) -> int:
    reader = BitReader(blob)
    stream = TwoStageStreamDecoder(window=None, decoder=decoder)
    while True:
        header = stream.read_and_decode_block(reader)
        if header.final:
            break
    stream.finish()
    return stream.produced


def _interleaved_best(decode, blob: bytes) -> dict:
    """Best-of-REPS seconds per decoder, all decoders alternating."""
    best = {decoder: float("inf") for decoder in DECODERS}
    for _ in range(REPS):
        for decoder in DECODERS:
            start = time.perf_counter()
            decode(blob, decoder)
            best[decoder] = min(best[decoder], time.perf_counter() - start)
    return best


def _measure(name: str, data: bytes):
    blob = _raw_deflate(data)
    for mode, decode in (
        ("conventional", _decode_conventional),
        ("marker", _decode_marker),
    ):
        best = _interleaved_best(decode, blob)
        _results[(name, mode)] = {
            decoder: len(data) / seconds for decoder, seconds in best.items()
        }


def _load_trajectory() -> list:
    """Prior entries from the committed file, oldest first.

    Accepts both the schema-1 flat layout (one implicit fused/legacy
    entry) and the schema-2 ``trajectory`` list. The entry for the
    *current* decoder set is dropped — this run replaces it.
    """
    if not TRAJECTORY_PATH.exists():
        return []
    document = json.loads(TRAJECTORY_PATH.read_text())
    if "trajectory" in document:
        entries = document["trajectory"]
    elif "results" in document:  # schema 1: fused/legacy, pre-batched
        entries = [{
            "decoders": ["fused", "legacy"],
            "corpus_size": document.get("corpus_size"),
            "level": document.get("level"),
            "reps": document.get("reps"),
            "results": document["results"],
        }]
    else:
        entries = []
    return [
        entry for entry in entries
        if tuple(entry.get("decoders", ())) != DECODERS
    ]


def test_decode_kernels(benchmark, reporter):
    corpora = _corpora()
    benchmark.pedantic(
        lambda: [_measure(name, data) for name, data in corpora.items()],
        rounds=1,
        iterations=1,
    )

    table = reporter("Decode kernels: single-thread fused vs batched vs legacy")
    widths = [8, 14, 12, 12, 12, 9, 9]
    table.row("corpus", "mode", "fused", "batched", "legacy",
              "bat/fus", "fus/leg", widths=widths)
    entry = {
        "decoders": list(DECODERS),
        "corpus_size": CORPUS_SIZE,
        "level": LEVEL,
        "reps": REPS,
        "results": {},
    }
    for (name, mode), rates in _results.items():
        batched_speedup = rates["batched"] / rates["fused"]
        fused_speedup = rates["fused"] / rates["legacy"]
        table.row(
            name, mode, fmt_bw(rates["fused"]), fmt_bw(rates["batched"]),
            fmt_bw(rates["legacy"]), f"{batched_speedup:.2f}x",
            f"{fused_speedup:.2f}x", widths=widths,
        )
        entry["results"][f"{name}/{mode}"] = {
            **{
                f"{decoder}_mb_s": round(rates[decoder] / 1e6, 3)
                for decoder in DECODERS
            },
            "batched_vs_fused": round(batched_speedup, 3),
            "fused_vs_legacy": round(fused_speedup, 3),
        }
    table.add()
    table.add(f"{CORPUS_SIZE >> 20} MiB per corpus, zlib level {LEVEL}, "
              f"interleaved best-of-{REPS}")
    table.emit()

    document = {"schema": 2, "trajectory": _load_trajectory() + [entry]}
    TRAJECTORY_PATH.write_text(json.dumps(document, indent=2) + "\n")

    # Regression guards. The fused kernels must stay decisively ahead of
    # legacy in every mode (committed results show >=1.5x; the floor is
    # lower only to absorb shared-container noise). The batched tier must
    # hold its win on the literal-heavy corpus — that is the workload the
    # two-pass split exists for — while match-heavy corpora are allowed
    # to tie or trail fused (documented trade-off, see README).
    for (name, mode), rates in _results.items():
        assert rates["fused"] > 1.25 * rates["legacy"], (name, mode, rates)
    conventional = _results[("base64", "conventional")]
    assert conventional["batched"] >= conventional["fused"], conventional
