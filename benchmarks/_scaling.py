"""Shared helpers for the scaling benchmarks (Figures 9-12, Tables 3-4)."""

import time

from repro.gz.writer import compress as gz_compress
from repro.reader import ParallelGzipReader
from repro.sim import CostModel, measure_components

#: Core counts swept in the paper's figures.
PAPER_CORES = [1, 2, 4, 8, 16, 24, 32, 48, 64, 96, 128]
#: Real (wall-clock) runs on this machine use small thread counts.
REAL_THREADS = [1, 2, 4]

_MEASURED_MODEL = None


def measured_model() -> CostModel:
    """Self-calibrated cost model (memoized; measuring takes seconds)."""
    global _MEASURED_MODEL
    if _MEASURED_MODEL is None:
        _MEASURED_MODEL = CostModel.measured(
            measure_components(sample_size=128 * 1024)
        )
    return _MEASURED_MODEL


def real_decompression_bandwidth(
    blob: bytes,
    *,
    parallelization: int,
    chunk_size: int,
    repeats: int = 2,
    **reader_kwargs,
) -> float:
    """Wall-clock decompressed bytes/s through the real ParallelGzipReader."""
    best = float("inf")
    output_size = 0
    for _ in range(repeats):
        start = time.perf_counter()
        with ParallelGzipReader(
            blob, parallelization=parallelization, chunk_size=chunk_size,
            verify=False, **reader_kwargs,
        ) as reader:
            output_size = 0
            while True:
                piece = reader.read(1 << 20)
                if not piece:
                    break
                output_size += len(piece)
        best = min(best, time.perf_counter() - start)
    return output_size / best


def make_corpus(generator, size: int, profile: str = "pigz", seed: int = 0):
    """(data, gzip blob) for a scaling corpus."""
    data = generator(size, seed)
    return data, gz_compress(data, profile)
