"""Table 3: influence of the compressor (Silesia, rapidgzip @128 cores).

Real part: every compressor profile from §4.8 is *actually produced* by
our writer emulation and decompressed by the real parallel reader — this
verifies the structural claims (bgzip -0 decodes through the stored fast
path; igzip -0 yields a single Dynamic Block nothing can parallelize;
pigz-style files carry empty sync blocks) end to end.

Simulated part: the 128-core bandwidth for every row, against the paper's
column.
"""

import pytest

from repro.datagen import generate_silesia_like
from repro.deflate import BLOCK_TYPE_DYNAMIC, BLOCK_TYPE_STORED, inflate
from repro.gz.header import parse_gzip_header
from repro.gz.writer import compress as gz_compress, profile_for_tool
from repro.io import BitReader
from repro.reader import decompress_parallel
from repro.sim import CostModel, TABLE3_ROWS, simulate_rapidgzip, table3_workload

from conftest import fmt_bw

#: Rows realizable with the writer's emulation profiles.
REAL_PROFILES = {
    "bgzip -l 0": "bgzf-stored",
    "bgzip -l 6": "bgzf",
    "gzip -6": "gzip",
    "igzip -0": "igzip0",
    "pigz -6": "pigz",
}


def test_table3_real_profiles_round_trip(benchmark, reporter):
    data = generate_silesia_like(768 * 1024, seed=4)

    def run():
        results = {}
        for row, profile in REAL_PROFILES.items():
            blob = gz_compress(data, profile)
            out = decompress_parallel(blob, 2, chunk_size=96 * 1024)
            assert out == data, row
            results[row] = len(data) / len(blob)
        return results

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    table = reporter("Table 3 (real): writer profiles, decompressed by the "
                     "parallel reader")
    table.row("row", "profile", "measured ratio", "paper ratio",
              widths=[12, 12, 14, 12])
    paper_ratios = {row: TABLE3_ROWS[row][0] for row in REAL_PROFILES}
    for row, profile in REAL_PROFILES.items():
        table.row(row, profile, f"{ratios[row]:.2f}",
                  f"{paper_ratios[row]:.2f}", widths=[12, 12, 14, 12])
    table.emit()
    # Structural invariants, not exact ratios (synthetic corpus).
    assert ratios["bgzip -l 0"] < 1.02  # stored: no compression
    assert ratios["pigz -6"] <= ratios["gzip -6"] * 1.05  # sync blocks cost


def test_table3_block_structure_pathologies(benchmark, reporter):
    data = generate_silesia_like(192 * 1024, seed=5)

    def analyze():
        findings = {}
        # igzip -0: one Dynamic Block for the whole stream.
        blob = gz_compress(data, "igzip0")
        reader = BitReader(blob)
        parse_gzip_header(reader)
        result = inflate(reader)
        findings["igzip0_blocks"] = len(result.boundaries)
        findings["igzip0_type"] = result.boundaries[0].block_type
        # bgzip -0: stored blocks only.
        blob = gz_compress(data[:60_000], "bgzf-stored")
        reader = BitReader(blob)
        parse_gzip_header(reader)
        result = inflate(reader)
        findings["bgzf0_types"] = {b.block_type for b in result.boundaries}
        return findings

    findings = benchmark.pedantic(analyze, rounds=1, iterations=1)
    table = reporter("Table 3: block-structure pathologies (§4.8)")
    table.add(f"igzip -0: {findings['igzip0_blocks']} block(s), type "
              f"{findings['igzip0_type']} (paper: single Dynamic Block -> "
              "single-core decompression)")
    table.add(f"bgzip -0: block types {findings['bgzf0_types']} "
              "(paper: Non-Compressed -> memcpy fast path)")
    table.emit()
    assert findings["igzip0_blocks"] == 1
    assert findings["igzip0_type"] == BLOCK_TYPE_DYNAMIC
    assert findings["bgzf0_types"] == {BLOCK_TYPE_STORED}


def test_table3_simulated(benchmark, reporter):
    model = CostModel.from_paper()

    def simulate():
        rows = {}
        for row in TABLE3_ROWS:
            workload, mult, paper = table3_workload(row)
            sim = simulate_rapidgzip(
                128, workload, model, uncompressed_size=54.2e9,
                decode_multiplier=mult,
            ).bandwidth / 1e9
            rows[row] = (sim, paper)
        return rows

    rows = benchmark.pedantic(simulate, rounds=1, iterations=1)
    table = reporter("Table 3 (simulated): Silesia @128 cores, GB/s")
    table.row("compressor", "sim", "paper", "err%", widths=[14, 8, 8, 6])
    for row, (sim, paper) in rows.items():
        table.row(row, f"{sim:.2f}", f"{paper:.3g}",
                  f"{100 * (sim - paper) / paper:+.0f}", widths=[14, 8, 8, 6])
    table.emit()

    values = {row: sim for row, (sim, paper) in rows.items()}
    assert values["bgzip -l 0"] == max(values.values())  # stored fastest
    assert values["igzip -0"] == min(values.values())  # unparallelizable
    assert values["pigz -6"] < values["gzip -6"]
    for row, (sim, paper) in rows.items():
        assert abs(sim - paper) / paper < 0.2, row
