"""Figure 7: BitReader bandwidth as a function of bits per read call.

The paper's finding: throughput grows with the number of requested bits,
because the per-call overhead is fixed — so decoders should "query as
rarely as possible with as many bits as possible". The same holds (much
more strongly) in Python, where the per-call overhead is interpreter
dispatch.
"""

import numpy as np
import pytest

from repro.io import BitReader

from conftest import fmt_bw

BITS_PER_READ = [1, 2, 4, 8, 16, 24, 32, 48]
#: Scale test size with bits-per-read for roughly equal runtimes (paper
#: uses 2 MiB x bits; scaled down for pure Python).
BASE_SIZE = 16 * 1024

_results = {}


def read_all(data: bytes, bits: int) -> int:
    reader = BitReader(data)
    total_reads = (len(data) * 8) // bits
    read = reader.read
    for _ in range(total_reads):
        read(bits)
    return total_reads


@pytest.mark.parametrize("bits", BITS_PER_READ)
def test_bitreader_bandwidth(benchmark, bits):
    rng = np.random.default_rng(7)
    data = rng.integers(0, 256, size=BASE_SIZE * max(bits // 4, 1), dtype=np.uint8).tobytes()
    benchmark.pedantic(read_all, args=(data, bits), rounds=3, iterations=1)
    seconds = benchmark.stats.stats.min
    _results[bits] = len(data) / seconds


def test_report(benchmark, reporter):
    benchmark.pedantic(lambda: None, rounds=1)
    table = reporter("Figure 7: BitReader bandwidth vs bits per read")
    table.row("bits/read", "bandwidth", "rel. to 1-bit", widths=[10, 14, 14])
    baseline = _results.get(1)
    for bits in BITS_PER_READ:
        if bits not in _results:
            continue
        rel = _results[bits] / baseline if baseline else float("nan")
        table.row(bits, fmt_bw(_results[bits]), f"{rel:.1f}x", widths=[10, 14, 14])
    table.add()
    table.add("Paper (Fig. 7): bandwidth rises monotonically with bits/read;")
    table.add("~24x between 1-bit and 32-bit reads on the Rome node.")
    monotone_pairs = sum(
        _results[b2] > _results[b1]
        for b1, b2 in zip(BITS_PER_READ, BITS_PER_READ[1:])
        if b1 in _results and b2 in _results
    )
    table.add(f"Monotone increases here: {monotone_pairs}/{len(BITS_PER_READ) - 1}")
    table.emit()
    assert _results[32] > 4 * _results[1]  # the paper's headline shape
