"""Remote sources: latency hiding through parallel prefetched range reads.

Decoding straight off an HTTP origin turns every cache-miss block into a
wire round trip. A serial consumer pays one round trip per block; the
parallel reader's prefetcher keeps many range requests in flight at
once, so the same origin latency is paid once per *batch* instead of
once per block. This benchmark quantifies that hiding against a local
fault-injection server with a deliberate 20 ms per-request latency (a
realistic same-region object-store round trip).

Two series over the same parallel-friendly archive served by
:class:`repro.io.fault_server.FaultHTTPServer`:

* ``serial`` — a plain sequential sweep of range reads through
  :func:`repro.io.remote.open_remote`, one block at a time: the
  lower bound any single-cursor client (curl | gunzip) pays.
* ``parallel`` — a full :class:`ParallelGzipReader` decode over the
  same URL with a worker pool issuing overlapped chunk reads.

Timings are best-of-N on fresh readers (cold block cache every rep).
Appends a trajectory entry to ``BENCH_remote_source.json`` at the repo
root; ``check_regression.py --suite remote`` replays it.
"""

import json
import pathlib
import time

from repro.datagen import generate_base64
from repro.gz.parallel_writer import compress_parallel
from repro.io.fault_server import FaultHTTPServer
from repro.io.remote import open_remote
from repro.reader import ParallelGzipReader

from conftest import fmt_bw

CORPUS_SIZE = 2 << 20
LEVEL = 6
REPS = 3
#: Injected per-request origin latency — the quantity being hidden.
LATENCY = 0.02
#: Remote block-cache granularity; also the serial sweep's read size.
NET_BLOCK = 64 * 1024
#: Writer chunk size — the catalog's chunk granularity on the read side.
WRITE_CHUNK = 256 * 1024
PARALLELIZATION = 8
#: Acceptance floor: prefetched decode must beat the serial sweep by
#: at least this factor under the injected latency.
SPEEDUP_FLOOR = 3.0
TRAJECTORY_PATH = (
    pathlib.Path(__file__).parent.parent / "BENCH_remote_source.json"
)

_results = {}


def _payload():
    data = generate_base64(CORPUS_SIZE, seed=11)
    blob = compress_parallel(
        data, parallelization=4, level=LEVEL,
        chunk_size=WRITE_CHUNK, layout="parallel-friendly",
    )
    return data, blob


def _open(url):
    # Generous deadline: the bench injects latency, not failures, and a
    # spurious giveup would corrupt the timing rather than surface it.
    return open_remote(url, block_size=NET_BLOCK, timeout=5.0, deadline=60.0)


def _serial_sweep(url, total: int) -> int:
    """One block-at-a-time range-read pass — the single-cursor baseline."""
    reader = _open(url)
    try:
        offset = 0
        while offset < total:
            piece = reader.pread(offset, NET_BLOCK)
            if not piece:
                break
            offset += len(piece)
        return offset
    finally:
        reader.close()


def _parallel_decode(url, expected: bytes) -> None:
    source = _open(url)
    with ParallelGzipReader(
        source, parallelization=PARALLELIZATION, backend="threads",
    ) as reader:
        assert reader.read() == expected


def _best_of(reps: int, run) -> float:
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def _measure(reps: int) -> dict:
    data, blob = _payload()
    with FaultHTTPServer(blob, latency=LATENCY) as server:
        serial = _best_of(
            reps, lambda: _serial_sweep(server.url, len(blob))
        )
        parallel = _best_of(
            reps, lambda: _parallel_decode(server.url, data)
        )
    # Throughput is quoted over the *wire* payload for the sweep (it
    # moves compressed bytes) and the decoded output for the reader (it
    # delivers plaintext) — both normalized to the compressed size so
    # the two series stay directly comparable.
    return {
        "remote/decode": {
            "serial_mb_s": round(len(blob) / serial / 1e6, 3),
            "parallel_mb_s": round(len(blob) / parallel / 1e6, 3),
            "speedup": round(serial / parallel, 3),
        },
    }


def _load_trajectory() -> list:
    if not TRAJECTORY_PATH.exists():
        return []
    document = json.loads(TRAJECTORY_PATH.read_text())
    return document.get("trajectory", [])


def measure(reps: int = REPS) -> dict:
    """Fresh ``remote/decode`` series for the regression gate."""
    _results.clear()
    _results.update(_measure(reps))
    return {
        series: {
            key: value for key, value in rates.items() if key.endswith("_mb_s")
        }
        for series, rates in _results.items()
    }


def test_remote_source(benchmark, reporter):
    benchmark.pedantic(lambda: measure(REPS), rounds=1, iterations=1)
    rates = _results["remote/decode"]

    table = reporter("Remote sources: latency hiding via parallel prefetch")
    widths = [14, 13, 13, 9]
    table.row("series", "serial", "parallel", "speedup", widths=widths)
    table.row(
        "remote/decode",
        fmt_bw(rates["serial_mb_s"] * 1e6),
        fmt_bw(rates["parallel_mb_s"] * 1e6),
        f"{rates['speedup']:.2f}x",
        widths=widths,
    )
    table.add()
    table.add(
        f"{CORPUS_SIZE >> 20} MiB corpus, {LATENCY * 1e3:.0f} ms injected "
        f"per-request latency, {NET_BLOCK >> 10} KiB blocks, "
        f"{PARALLELIZATION} workers, best-of-{REPS}"
    )
    table.emit()

    entry = {
        "series_keys": ["serial_mb_s", "parallel_mb_s"],
        "corpus_size": CORPUS_SIZE,
        "level": LEVEL,
        "reps": REPS,
        "latency": LATENCY,
        "net_block": NET_BLOCK,
        "write_chunk": WRITE_CHUNK,
        "parallelization": PARALLELIZATION,
        "results": dict(_results),
    }
    document = {"schema": 1, "trajectory": _load_trajectory() + [entry]}
    TRAJECTORY_PATH.write_text(json.dumps(document, indent=2) + "\n")

    # Acceptance floor: with 20 ms per request, overlapping the round
    # trips must win decisively — anything under 3x means the prefetcher
    # stopped hiding the wire.
    assert rates["speedup"] >= SPEEDUP_FLOOR, rates
