"""Table 2: component bandwidths of the implementation.

Measures every component the paper benchmarks, reports absolute numbers
for *this* implementation and compares the *ratios* against the paper's
(the pure-Python absolutes are of course far lower; what must reproduce is
which component is how much faster than which — 28x custom-parser over
zlib-trial, ~6x skip-LUT over custom parser, NBF ~7x over the best DBF,
marker replacement an order of magnitude above decoding).
"""

import zlib

import numpy as np
import pytest

from repro.blockfinder import (
    DynamicBlockFinder,
    DynamicBlockFinderCustomTrial,
    DynamicBlockFinderSkipLUT,
    DynamicBlockFinderZlibTrial,
    PugzBlockFinder,
    UncompressedBlockFinder,
    VectorizedDynamicBlockFinder,
)
from repro.datagen import generate_silesia_like
from repro.deflate import inflate
from repro.deflate.markers import pad_window, replace_markers

from conftest import fmt_bw

#: Paper Table 2, MB/s. ("DBF skip-LUT+packed" has no paper row: it is the
#: scalar variant whose optimizations the paper folds into "DBF rapidgzip";
#: our production "DBF rapidgzip" is the vectorized filter chain.)
PAPER = {
    "DBF zlib": 0.1234,
    "DBF custom deflate": 3.403,
    "Pugz block finder": 11.3,
    "DBF skip-LUT": 18.26,
    "DBF skip-LUT+packed": 43.1,
    "DBF rapidgzip": 43.1,
    "NBF": 301.8,
    "Marker replacement": 1254.0,
    "Write to /dev/shm/": 3799.0,
    "Count newlines": 9550.0,
}

_results = {}


def _noise(size: int, seed: int = 0) -> bytes:
    return np.random.default_rng(seed).integers(
        0, 256, size=size, dtype=np.uint8
    ).tobytes()


def _scan(finder_class, data: bytes, until_bits: int):
    finder = finder_class(data)
    list(finder.iter_candidates(0, until=until_bits))
    return until_bits / 8


def _record(benchmark, name: str, nbytes: float):
    _results[name] = nbytes / benchmark.stats.stats.min


def test_dbf_zlib_trial(benchmark):
    data = _noise(4096)
    benchmark.pedantic(
        _scan, args=(DynamicBlockFinderZlibTrial, data, 1024), rounds=2, iterations=1
    )
    _record(benchmark, "DBF zlib", 1024 / 8)


def test_dbf_custom_trial(benchmark):
    data = _noise(16 * 1024)
    benchmark.pedantic(
        _scan, args=(DynamicBlockFinderCustomTrial, data, 40_000), rounds=2,
        iterations=1,
    )
    _record(benchmark, "DBF custom deflate", 40_000 / 8)


def test_pugz_block_finder(benchmark):
    data = _noise(16 * 1024)
    benchmark.pedantic(
        _scan, args=(PugzBlockFinder, data, 16_000), rounds=2, iterations=1
    )
    _record(benchmark, "Pugz block finder", 16_000 / 8)


def test_dbf_skip_lut(benchmark):
    data = _noise(64 * 1024)
    benchmark.pedantic(
        _scan, args=(DynamicBlockFinderSkipLUT, data, 300_000), rounds=2,
        iterations=1,
    )
    _record(benchmark, "DBF skip-LUT", 300_000 / 8)


def test_dbf_skip_lut_packed(benchmark):
    # The scalar skip-LUT + packed-histogram finder: in C++ this is the
    # production finder; in Python the per-position interpreter dispatch
    # makes it *slower* than the plain trial parser — an honestly reported
    # inversion (see the report note below).
    data = _noise(16 * 1024)
    benchmark.pedantic(
        _scan, args=(DynamicBlockFinder, data, 60_000), rounds=2, iterations=1
    )
    _record(benchmark, "DBF skip-LUT+packed", 60_000 / 8)


def test_dbf_rapidgzip(benchmark):
    # Production finder: the NumPy-vectorized filter chain — the Python
    # analogue of the paper's bit-level parallelism (§3.4.2).
    data = _noise(512 * 1024)
    benchmark.pedantic(
        _scan, args=(VectorizedDynamicBlockFinder, data, len(data) * 8 - 80),
        rounds=2, iterations=1,
    )
    _record(benchmark, "DBF rapidgzip", len(data) - 10)


def test_nbf(benchmark):
    data = _noise(8 << 20)
    benchmark.pedantic(
        _scan, args=(UncompressedBlockFinder, data, len(data) * 8), rounds=3,
        iterations=1,
    )
    _record(benchmark, "NBF", len(data))


def test_marker_replacement(benchmark):
    rng = np.random.default_rng(1)
    segment = rng.integers(0, 1 << 16, size=4 << 20, dtype=np.uint16)
    window = pad_window(_noise(32 * 1024, seed=2))
    benchmark.pedantic(
        replace_markers, args=(segment, window), rounds=3, iterations=1
    )
    _record(benchmark, "Marker replacement", len(segment))


def test_write_tmpfs(benchmark, tmp_path):
    import os

    directory = "/dev/shm" if os.path.isdir("/dev/shm") else tmp_path
    data = _noise(16 << 20, seed=3)
    path = f"{directory}/repro_tbl2.bin"

    def write():
        with open(path, "wb") as handle:
            handle.write(data)

    benchmark.pedantic(write, rounds=3, iterations=1)
    os.unlink(path)
    _record(benchmark, "Write to /dev/shm/", len(data))


def _decode_silesia(decoder: str):
    inflate(_DECODE_BLOB, decoder=decoder)


_DECODE_BLOB = None


def _decode_blob() -> bytes:
    global _DECODE_BLOB
    if _DECODE_BLOB is None:
        compressor = zlib.compressobj(6, zlib.DEFLATED, -15)
        data = generate_silesia_like(2 << 20, seed=9)
        _DECODE_BLOB = compressor.compress(data) + compressor.flush()
    return _DECODE_BLOB


def test_decode_fused(benchmark):
    # Not a paper Table 2 row: the paper benchmarks decoding indirectly
    # through the end-to-end figures. Reported here because the fused
    # kernels shift the decode/block-finder balance that Table 2 frames.
    _decode_blob()
    benchmark.pedantic(_decode_silesia, args=("fused",), rounds=3, iterations=1)
    _record(benchmark, "Decode (fused)", 2 << 20)


def test_decode_legacy(benchmark):
    _decode_blob()
    benchmark.pedantic(_decode_silesia, args=("legacy",), rounds=3, iterations=1)
    _record(benchmark, "Decode (legacy)", 2 << 20)


def test_count_newlines(benchmark):
    data = _noise(32 << 20, seed=4)
    benchmark.pedantic(data.count, args=(b"\n",), rounds=3, iterations=1)
    _record(benchmark, "Count newlines", len(data))


def test_report(benchmark, reporter):
    benchmark.pedantic(lambda: None, rounds=1)
    table = reporter("Table 2: component bandwidths")
    table.row("component", "measured", "paper", "ratio vs 'DBF rapidgzip'",
              widths=[22, 14, 14, 26])
    our_reference = _results.get("DBF rapidgzip", 1.0)
    paper_reference = PAPER["DBF rapidgzip"]
    for name in PAPER:
        if name not in _results:
            continue
        ours_rel = _results[name] / our_reference
        paper_rel = PAPER[name] / paper_reference
        table.row(
            name,
            fmt_bw(_results[name]),
            f"{PAPER[name]:.4g} MB/s",
            f"{ours_rel:8.3f} (paper {paper_rel:.3f})",
            widths=[22, 14, 14, 30],
        )
    table.add()
    table.add("Key ratio checks (paper -> here):")
    checks = []
    if "DBF zlib" in _results and "DBF custom deflate" in _results:
        checks.append(("custom/zlib trial", 28,
                       _results["DBF custom deflate"] / _results["DBF zlib"]))
    if "DBF skip-LUT" in _results and "DBF custom deflate" in _results:
        checks.append(("skip-LUT/custom", 5.4,
                       _results["DBF skip-LUT"] / _results["DBF custom deflate"]))
    if "NBF" in _results and "DBF rapidgzip" in _results:
        checks.append(("NBF/DBF", 7.0, _results["NBF"] / _results["DBF rapidgzip"]))
    for label, paper_ratio, ours in checks:
        table.add(f"  {label}: paper {paper_ratio:.1f}x, here {ours:.1f}x")
    if "Decode (fused)" in _results and "Decode (legacy)" in _results:
        fused = _results["Decode (fused)"]
        legacy = _results["Decode (legacy)"]
        table.add()
        table.add("Decode kernels (no paper row; see bench_decode_kernels):")
        table.add(f"  Decode (fused):  {fmt_bw(fused)}")
        table.add(f"  Decode (legacy): {fmt_bw(legacy)}")
        table.add(f"  fused/legacy: {fused / legacy:.2f}x")
    table.add()
    table.add("NOTE: the paper's 28x custom-parser advantage over the zlib")
    table.add("trial INVERTS here — a substrate artifact: one C-level zlib")
    table.add("attempt costs less than one pure-Python header parse, even")
    table.add("though it does far more work per position. The orderings")
    table.add("among the from-scratch variants and the vectorized finder do")
    table.add("reproduce the paper's optimization story.")
    table.emit()
    # Orderings that must hold among the from-scratch components:
    assert _results["DBF custom deflate"] < _results["DBF skip-LUT"]
    assert _results["DBF skip-LUT"] < _results["DBF rapidgzip"]
    assert _results["DBF rapidgzip"] < _results["NBF"]
    # NBF and marker replacement are both single NumPy passes here, so they
    # land within noise of each other (the paper's 4x gap between them is a
    # memcpy-vs-gather effect below NumPy's granularity); both must beat
    # the Dynamic finder decisively.
    assert _results["Marker replacement"] > 5 * _results["DBF rapidgzip"]
    assert _results["Decode (fused)"] > _results["Decode (legacy)"]
