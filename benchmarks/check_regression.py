"""Throughput-regression gate against the committed benchmark baseline.

Reruns the decode-kernel measurement from :mod:`bench_decode_kernels`
(same corpora, same interleaved best-of-N discipline) and compares the
fresh per-decoder throughputs against the committed trajectory file
``BENCH_decode_kernels.json`` (latest trajectory entry; the flat
pre-trajectory layout is still accepted). Any series more than
``--threshold`` (default 15%) below its committed value fails the check.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py
    PYTHONPATH=src python benchmarks/check_regression.py --reps 3 --json -

Runs as a *blocking* CI step: the interleaved best-of-N discipline
cancels shared-runner load drift, and the 15% threshold absorbs what
noise remains, so a failure means a real kernel regression.
Exit codes: 0 ok, 1 regression past the threshold, 2 no baseline.
"""

import argparse
import json
import pathlib
import sys

_HERE = pathlib.Path(__file__).parent
sys.path.insert(0, str(_HERE))  # conftest, bench_decode_kernels

import bench_decode_kernels as kernels  # noqa: E402


def baseline_entry(document: dict) -> dict:
    """The comparison baseline inside a committed trajectory document.

    Schema 2 keeps a list of entries (one per decoder set); the newest
    one is the baseline. The schema-1 flat layout *is* the entry.
    """
    trajectory = document.get("trajectory")
    if trajectory:
        return trajectory[-1]
    return document


def measure(reps: int) -> dict:
    """Fresh per-decoder MB/s per ``corpus/mode`` series."""
    original_reps = kernels.REPS
    kernels.REPS = reps
    try:
        fresh = {}
        for name, data in kernels._corpora().items():
            blob = kernels._raw_deflate(data)
            for mode, decode in (
                ("conventional", kernels._decode_conventional),
                ("marker", kernels._decode_marker),
            ):
                best = kernels._interleaved_best(decode, blob)
                fresh[f"{name}/{mode}"] = {
                    f"{decoder}_mb_s": round(len(data) / seconds / 1e6, 3)
                    for decoder, seconds in best.items()
                }
        return fresh
    finally:
        kernels.REPS = original_reps


def compare(baseline: dict, fresh: dict, threshold: float) -> list:
    """One comparison row per (series, decoder) present in both runs."""
    rows = []
    for series, committed in sorted(baseline.get("results", {}).items()):
        current = fresh.get(series)
        if current is None:
            continue
        for decoder in baseline.get("decoders", ("fused", "legacy")):
            key = f"{decoder}_mb_s"
            before, after = committed.get(key), current.get(key)
            if not before or not after:
                continue
            change = after / before - 1.0
            rows.append({
                "series": f"{series}/{decoder}",
                "baseline_mb_s": before,
                "current_mb_s": after,
                "change": round(change, 4),
                "regressed": change < -threshold,
            })
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", type=pathlib.Path,
        default=kernels.TRAJECTORY_PATH,
        help="committed BENCH_*.json to compare against",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.15,
        help="fractional slowdown that fails the check (default 0.15)",
    )
    parser.add_argument(
        "--reps", type=int, default=kernels.REPS,
        help="best-of-N repetitions (lower = faster, noisier)",
    )
    parser.add_argument(
        "--json", metavar="FILE",
        help="also write the comparison as JSON ('-' for stdout)",
    )
    arguments = parser.parse_args(argv)

    if not arguments.baseline.exists():
        print(f"check_regression: no baseline at {arguments.baseline}",
              file=sys.stderr)
        return 2
    baseline = baseline_entry(json.loads(arguments.baseline.read_text()))

    print(f"check_regression: measuring (best-of-{arguments.reps}, "
          f"{baseline.get('corpus_size', 0) >> 20} MiB corpora, "
          f"decoders {'/'.join(baseline.get('decoders', ('fused', 'legacy')))}"
          ")...")
    fresh = measure(arguments.reps)
    rows = compare(baseline, fresh, arguments.threshold)

    width = max((len(row["series"]) for row in rows), default=10)
    for row in rows:
        flag = "REGRESSED" if row["regressed"] else "ok"
        print(f"  {row['series']:<{width}}  "
              f"{row['baseline_mb_s']:8.2f} -> {row['current_mb_s']:8.2f} MB/s "
              f"({row['change']:+7.1%})  {flag}")

    regressed = [row for row in rows if row["regressed"]]
    verdict = {
        "schema": 1,
        "baseline": str(arguments.baseline),
        "threshold": arguments.threshold,
        "series": rows,
        "regressed": [row["series"] for row in regressed],
    }
    if arguments.json:
        text = json.dumps(verdict, indent=2, sort_keys=True) + "\n"
        if arguments.json == "-":
            sys.stdout.write(text)
        else:
            pathlib.Path(arguments.json).write_text(text)

    if regressed:
        print(f"check_regression: {len(regressed)} series regressed more "
              f"than {arguments.threshold:.0%}", file=sys.stderr)
        return 1
    print(f"check_regression: all {len(rows)} series within "
          f"{arguments.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
