"""Throughput-regression gate against the committed benchmark baseline.

Reruns the decode-kernel measurement from :mod:`bench_decode_kernels`
(same corpora, same interleaved best-of-N discipline) and compares the
fresh per-decoder throughputs against the committed trajectory file
``BENCH_decode_kernels.json`` (latest trajectory entry; the flat
pre-trajectory layout is still accepted). Any series more than
``--threshold`` (default 15%) below its committed value fails the check.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py
    PYTHONPATH=src python benchmarks/check_regression.py --reps 3 --json -

Runs as a *blocking* CI step: the interleaved best-of-N discipline
cancels shared-runner load drift, and the 15% threshold absorbs what
noise remains, so a failure means a real kernel regression.
Exit codes: 0 ok, 1 regression past the threshold, 2 no baseline.
"""

import argparse
import json
import pathlib
import sys

_HERE = pathlib.Path(__file__).parent
sys.path.insert(0, str(_HERE))  # conftest, bench_decode_kernels

import bench_decode_kernels as kernels  # noqa: E402
import bench_parallel_friendly as parallel_friendly  # noqa: E402
import bench_remote_source as remote_source  # noqa: E402


def baseline_entry(document: dict) -> dict:
    """The comparison baseline inside a committed trajectory document.

    Schema 2 keeps a list of entries (one per decoder set); the newest
    one is the baseline. The schema-1 flat layout *is* the entry.
    """
    trajectory = document.get("trajectory")
    if trajectory:
        return trajectory[-1]
    return document


def measure(reps: int) -> dict:
    """Fresh per-decoder MB/s per ``corpus/mode`` series."""
    original_reps = kernels.REPS
    kernels.REPS = reps
    try:
        fresh = {}
        for name, data in kernels._corpora().items():
            blob = kernels._raw_deflate(data)
            for mode, decode in (
                ("conventional", kernels._decode_conventional),
                ("marker", kernels._decode_marker),
            ):
                best = kernels._interleaved_best(decode, blob)
                fresh[f"{name}/{mode}"] = {
                    f"{decoder}_mb_s": round(len(data) / seconds / 1e6, 3)
                    for decoder, seconds in best.items()
                }
        return fresh
    finally:
        kernels.REPS = original_reps


#: name -> (measure(reps) -> fresh series, committed baseline, default reps)
SUITES = {
    "kernels": (measure, kernels.TRAJECTORY_PATH, kernels.REPS),
    "parallel-friendly": (
        parallel_friendly.measure,
        parallel_friendly.TRAJECTORY_PATH,
        parallel_friendly.REPS,
    ),
    "remote": (
        remote_source.measure,
        remote_source.TRAJECTORY_PATH,
        remote_source.REPS,
    ),
}


def _metric_keys(baseline: dict) -> list:
    """Throughput keys a baseline entry tracks (``*_mb_s``)."""
    if baseline.get("series_keys"):
        return list(baseline["series_keys"])
    return [
        f"{decoder}_mb_s"
        for decoder in baseline.get("decoders", ("fused", "legacy"))
    ]


def compare(baseline: dict, fresh: dict, threshold: float) -> list:
    """One comparison row per (series, metric) present in both runs."""
    rows = []
    for series, committed in sorted(baseline.get("results", {}).items()):
        current = fresh.get(series)
        if current is None:
            continue
        for key in _metric_keys(baseline):
            before, after = committed.get(key), current.get(key)
            if not before or not after:
                continue
            change = after / before - 1.0
            rows.append({
                "series": f"{series}/{key[: -len('_mb_s')]}",
                "baseline_mb_s": before,
                "current_mb_s": after,
                "change": round(change, 4),
                "regressed": change < -threshold,
            })
    return rows


def run_suite(name: str, arguments) -> tuple:
    """Measure one suite; returns (exit_code, comparison rows)."""
    suite_measure, default_baseline, default_reps = SUITES[name]
    baseline_path = arguments.baseline or default_baseline
    if not baseline_path.exists():
        print(f"check_regression: no baseline at {baseline_path}",
              file=sys.stderr)
        return 2, []
    baseline = baseline_entry(json.loads(baseline_path.read_text()))
    reps = arguments.reps or default_reps

    print(f"check_regression[{name}]: measuring (best-of-{reps}, "
          f"{baseline.get('corpus_size', 0) >> 20} MiB corpora, series "
          f"{'/'.join(key[: -len('_mb_s')] for key in _metric_keys(baseline))}"
          ")...")
    fresh = suite_measure(reps)
    rows = compare(baseline, fresh, arguments.threshold)

    width = max((len(row["series"]) for row in rows), default=10)
    for row in rows:
        flag = "REGRESSED" if row["regressed"] else "ok"
        print(f"  {row['series']:<{width}}  "
              f"{row['baseline_mb_s']:8.2f} -> {row['current_mb_s']:8.2f} MB/s "
              f"({row['change']:+7.1%})  {flag}")

    regressed = [row for row in rows if row["regressed"]]
    if regressed:
        print(f"check_regression[{name}]: {len(regressed)} series regressed "
              f"more than {arguments.threshold:.0%}", file=sys.stderr)
        return 1, rows
    print(f"check_regression[{name}]: all {len(rows)} series within "
          f"{arguments.threshold:.0%} of baseline")
    return 0, rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--suite", default="kernels",
        choices=[*SUITES, "all"],
        help="which committed baseline to replay (default: kernels)",
    )
    parser.add_argument(
        "--baseline", type=pathlib.Path, default=None,
        help="committed BENCH_*.json to compare against (default: the "
        "suite's own trajectory file; only meaningful for a single suite)",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.15,
        help="fractional slowdown that fails the check (default 0.15)",
    )
    parser.add_argument(
        "--reps", type=int, default=None,
        help="best-of-N repetitions (lower = faster, noisier; default: "
        "the suite's committed rep count)",
    )
    parser.add_argument(
        "--json", metavar="FILE",
        help="also write the comparison as JSON ('-' for stdout)",
    )
    arguments = parser.parse_args(argv)

    suites = list(SUITES) if arguments.suite == "all" else [arguments.suite]
    if arguments.baseline and len(suites) > 1:
        parser.error("--baseline only applies to a single --suite")

    worst = 0
    all_rows = []
    for name in suites:
        code, rows = run_suite(name, arguments)
        worst = max(worst, code)
        all_rows.extend(rows)

    if arguments.json:
        verdict = {
            "schema": 1,
            "suites": suites,
            "threshold": arguments.threshold,
            "series": all_rows,
            "regressed": [r["series"] for r in all_rows if r["regressed"]],
        }
        text = json.dumps(verdict, indent=2, sort_keys=True) + "\n"
        if arguments.json == "-":
            sys.stdout.write(text)
        else:
            pathlib.Path(arguments.json).write_text(text)
    return worst


if __name__ == "__main__":
    sys.exit(main())
