"""Figure 10: weak-scaling decompression of the (synthetic) Silesia corpus.

The paper's headline findings here: rapidgzip stops scaling after ~64
cores at 5.6 GB/s without an index (Amdahl via sequential window
propagation — markers persist on this corpus) and reaches 16.3 GB/s with
one; speedups over GNU gzip are 33x / 95x. pugz is absent: it cannot
decompress data with bytes outside 9-126.
"""

import pytest

from repro.datagen import generate_silesia_like
from repro.errors import FormatError, UsageError
from repro.reader import decompress_parallel
from repro.sim import CostModel, WORKLOADS, simulate_rapidgzip, simulate_single_threaded, simulate_pugz

from _scaling import PAPER_CORES, REAL_THREADS, make_corpus, measured_model, real_decompression_bandwidth
from conftest import fmt_bw


def test_fig10_real_small_scale(benchmark, reporter, backends):
    data, blob = make_corpus(generate_silesia_like, 2 * 1024 * 1024)

    def sweep():
        return {
            (backend, threads): real_decompression_bandwidth(
                blob, parallelization=threads, chunk_size=128 * 1024,
                repeats=1, backend=backend,
            )
            for backend in backends
            for threads in REAL_THREADS
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = reporter("Figure 10 (real): silesia-like, this implementation")
    table.row("backend", "threads", "bandwidth", widths=[10, 8, 14])
    for (backend, threads), bandwidth in results.items():
        table.row(backend, threads, fmt_bw(bandwidth), widths=[10, 8, 14])
    table.emit()
    for bandwidth in results.values():
        assert bandwidth > 0


def test_fig10_pugz_cannot_participate(reporter, benchmark):
    # Paper §4.5: "The comparison does not include pugz because it is not
    # able to decompress data containing bytes outside of 9-126."
    data, blob = make_corpus(generate_silesia_like, 256 * 1024)

    def check():
        with pytest.raises(FormatError):
            decompress_parallel(blob, 2, chunk_size=64 * 1024, pugz_compatible=True)
        with pytest.raises(UsageError):
            simulate_pugz(
                4, WORKLOADS["silesia"], CostModel.from_paper(),
                uncompressed_size=1e9,
            )
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)


def test_fig10_simulated_sweep(benchmark, reporter):
    paper_model = CostModel.from_paper()
    self_model = measured_model()
    workload = WORKLOADS["silesia"]

    def simulate(model):
        rows = {}
        for cores in PAPER_CORES:
            size = 424e6 * cores  # paper: 424 MB uncompressed per core
            rows[cores] = {
                "rapidgzip": simulate_rapidgzip(
                    cores, workload, model, uncompressed_size=size
                ).bandwidth,
                "rapidgzip-index": simulate_rapidgzip(
                    cores, workload, model, uncompressed_size=size, with_index=True
                ).bandwidth,
            }
        return rows

    paper_rows = benchmark.pedantic(simulate, args=(paper_model,), rounds=1,
                                    iterations=1)
    self_rows = simulate(self_model)
    gzip_bw = simulate_single_threaded(
        "gzip", workload, paper_model, uncompressed_size=1e9
    ).bandwidth

    table = reporter("Figure 10 (simulated): silesia weak scaling, GB/s")
    table.row("P", "rapidgzip", "rg-index", "self-cal rapidgzip",
              widths=[4, 10, 10, 20])
    for cores in PAPER_CORES:
        table.row(
            cores,
            f"{paper_rows[cores]['rapidgzip'] / 1e9:.2f}",
            f"{paper_rows[cores]['rapidgzip-index'] / 1e9:.2f}",
            f"{self_rows[cores]['rapidgzip'] / 1e6:.2f} MB/s",
            widths=[4, 10, 10, 20],
        )
    no_index_speedup = paper_rows[128]["rapidgzip"] / gzip_bw
    index_speedup = paper_rows[128]["rapidgzip-index"] / gzip_bw
    table.add()
    table.add(f"speedups over gzip at 128: {no_index_speedup:.0f}x no-index "
              f"(paper 33x), {index_speedup:.0f}x with index (paper 95x)")
    knee = paper_rows[96]["rapidgzip"] / paper_rows[64]["rapidgzip"]
    table.add(f"scaling 64->96 cores: +{100 * (knee - 1):.0f}% "
              "(paper: stops scaling after ~64)")
    table.emit()

    assert abs(paper_rows[128]["rapidgzip"] / 1e9 - 5.6) / 5.6 < 0.2
    assert abs(paper_rows[128]["rapidgzip-index"] / 1e9 - 16.3) / 16.3 < 0.25
    assert knee < 1.15  # plateau after 64 cores
    assert 25 < no_index_speedup < 45
    # Self-calibration keeps the same qualitative plateau.
    self_knee = self_rows[128]["rapidgzip"] / self_rows[64]["rapidgzip"]
    assert self_knee < 1.5
