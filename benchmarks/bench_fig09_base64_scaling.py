"""Figure 9: weak-scaling decompression of base64 data.

Two parts:

1. **Real**: the actual ParallelGzipReader on a pigz-layout base64 file at
   small thread counts (this container has one core, so wall-clock
   parallel speedup is not expected — the run demonstrates correctness and
   measures per-configuration overheads).
2. **Simulated**: the full 1..128-core sweep on the calibrated pipeline
   model, under both the paper calibration and this implementation's
   self-calibration, against the paper's published anchor points.
"""

import pytest

from repro.datagen import generate_base64
from repro.pool import available_cores
from repro.sim import (
    CostModel,
    WORKLOADS,
    simulate_pugz,
    simulate_rapidgzip,
    simulate_single_threaded,
)

from _scaling import (
    PAPER_CORES,
    REAL_THREADS,
    make_corpus,
    measured_model,
    real_decompression_bandwidth,
)
from conftest import fmt_bw

#: Anchor points read off the paper's Figure 9 (GB/s).
PAPER_ANCHORS = {
    ("rapidgzip", 128): 8.7,
    ("rapidgzip-index", 128): 17.8,
    ("pugz-sync", 128): 1.2,
    ("gzip", 1): 0.157,
    ("igzip", 1): 0.416,
}


def test_fig09_real_small_scale(benchmark, reporter, backends):
    data, blob = make_corpus(generate_base64, 2 * 1024 * 1024)

    def sweep():
        return {
            (backend, threads): real_decompression_bandwidth(
                blob, parallelization=threads, chunk_size=128 * 1024,
                repeats=1, backend=backend,
            )
            for backend in backends
            for threads in REAL_THREADS
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = reporter("Figure 9 (real): base64, this implementation")
    table.row("backend", "threads", "bandwidth", widths=[10, 8, 14])
    for (backend, threads), bandwidth in results.items():
        table.row(backend, threads, fmt_bw(bandwidth), widths=[10, 8, 14])
    cores = available_cores()
    table.add()
    table.add(f"usable cores: {cores}")
    if {"threads", "processes"} <= set(backends) and cores >= 4:
        speedup = results[("processes", 4)] / results[("threads", 4)]
        table.add(f"process/thread speedup at 4 workers: {speedup:.2f}x")
        table.emit()
        # The GIL-bound search path must genuinely scale across cores.
        assert speedup >= 2.0
    else:
        table.add(
            "(fewer than 4 usable cores: processes cannot beat threads "
            "here, speedup assertion skipped)"
        )
        table.emit()
    for bandwidth in results.values():
        assert bandwidth > 0


def test_fig09_simulated_sweep(benchmark, reporter):
    paper_model = CostModel.from_paper()
    self_model = measured_model()
    workload = WORKLOADS["base64"]

    def simulate(model):
        rows = {}
        for cores in PAPER_CORES:
            size = 512 * 1024 * 1024 * cores
            rows[cores] = {
                "rapidgzip": simulate_rapidgzip(
                    cores, workload, model, uncompressed_size=size
                ).bandwidth,
                "rapidgzip-index": simulate_rapidgzip(
                    cores, workload, model, uncompressed_size=size, with_index=True
                ).bandwidth,
                "pugz": simulate_pugz(
                    cores, workload, model,
                    uncompressed_size=size, synchronized=False,
                ).bandwidth,
                "pugz-sync": simulate_pugz(
                    cores, workload, model,
                    uncompressed_size=128 * 1024 * 1024 * cores,
                ).bandwidth,
            }
        return rows

    paper_rows = benchmark.pedantic(simulate, args=(paper_model,), rounds=1,
                                    iterations=1)
    self_rows = simulate(self_model)

    table = reporter("Figure 9 (simulated): base64 weak scaling, GB/s")
    table.row("P", "rapidgzip", "rg-index", "pugz", "pugz-sync",
              "self-cal rapidgzip", widths=[4, 10, 10, 10, 10, 18])
    for cores in PAPER_CORES:
        row = paper_rows[cores]
        table.row(
            cores,
            f"{row['rapidgzip'] / 1e9:.2f}",
            f"{row['rapidgzip-index'] / 1e9:.2f}",
            f"{row['pugz'] / 1e9:.2f}",
            f"{row['pugz-sync'] / 1e9:.2f}",
            f"{self_rows[cores]['rapidgzip'] / 1e6:.2f} MB/s",
            widths=[4, 10, 10, 10, 10, 18],
        )
    gzip_bw = simulate_single_threaded(
        "gzip", workload, paper_model, uncompressed_size=1e9
    ).bandwidth
    speedup = paper_rows[128]["rapidgzip"] / gzip_bw
    table.add()
    table.add(f"speedup over gzip at 128 cores: {speedup:.0f}x (paper: 55x)")
    for (series, cores), paper_value in PAPER_ANCHORS.items():
        if series == "gzip":
            value = gzip_bw / 1e9
        elif series == "igzip":
            value = simulate_single_threaded(
                "igzip", workload, paper_model, uncompressed_size=1e9
            ).bandwidth / 1e9
        else:
            value = paper_rows[cores][series] / 1e9
        table.add(
            f"anchor {series}@{cores}: paper {paper_value:.2f} GB/s, "
            f"sim {value:.2f} GB/s"
        )
    table.emit()

    assert 40 < speedup < 70
    assert abs(paper_rows[128]["rapidgzip"] / 1e9 - 8.7) / 8.7 < 0.2
    assert abs(paper_rows[128]["rapidgzip-index"] / 1e9 - 17.8) / 17.8 < 0.2
    assert abs(paper_rows[128]["pugz-sync"] / 1e9 - 1.2) / 1.2 < 0.25
    # Self-calibrated model preserves the shape: index mode wins, pugz-sync
    # plateaus, rapidgzip leads pugz below 64 cores.
    assert self_rows[128]["rapidgzip-index"] > self_rows[128]["rapidgzip"]
    assert self_rows[128]["pugz-sync"] < self_rows[32]["rapidgzip"]
