"""Parallel-friendly archives: write cost and marker-free read speedup.

Write side: producing a self-describing archive (independent members plus
an MZ/RG chunk catalog in the first header) against stock single-stream
gzip and BGZF, on the paper's three corpora. The catalogued layout
compresses chunks on worker threads, so its write throughput should beat
stock gzip and track BGZF.

Read side (the tentpole claim): single-thread decode of the *same*
parallel-friendly archive with the catalog honored (complete seek index
synthesized at open, every chunk on the fused conventional/zlib path)
versus the catalog ignored (``detect_catalog=False`` — the block-finder +
two-stage marker pipeline the paper needs for arbitrary gzip). Identical
bytes out; the speedup is pure encoding-awareness.

All timings are interleaved best-of-N (cancels machine-load drift).
Appends a trajectory entry to ``BENCH_parallel_friendly.json`` at the
repo root; ``check_regression.py --suite parallel-friendly`` replays it.
"""

import json
import pathlib
import time

from repro.datagen import generate_base64, generate_fastq, generate_silesia_like
from repro.gz.parallel_writer import compress_parallel
from repro.gz.writer import compress as gz_compress
from repro.reader import ParallelGzipReader

from conftest import fmt_bw

CORPUS_SIZE = 4 << 20
LEVEL = 6
REPS = 5
WRITE_THREADS = 4
#: Writer chunk size — also the synthesized index's chunk granularity.
WRITE_CHUNK = 512 * 1024
#: Reader chunk size for the marker baseline, so the forced path really
#: exercises block-finding + marker decode instead of one giant chunk.
READ_CHUNK = 256 * 1024
TRAJECTORY_PATH = (
    pathlib.Path(__file__).parent.parent / "BENCH_parallel_friendly.json"
)

_results = {}


def _corpora():
    return {
        "base64": generate_base64(CORPUS_SIZE, seed=1),
        "silesia": generate_silesia_like(CORPUS_SIZE, seed=2),
        "fastq": generate_fastq(CORPUS_SIZE, seed=3),
    }


# -- write side --------------------------------------------------------------

def _write_gzip(data: bytes) -> bytes:
    return gz_compress(data, "gzip", level=LEVEL)


def _write_parallel_friendly(data: bytes) -> bytes:
    return compress_parallel(
        data, parallelization=WRITE_THREADS, level=LEVEL,
        chunk_size=WRITE_CHUNK, layout="parallel-friendly",
    )


def _write_bgzf(data: bytes) -> bytes:
    return compress_parallel(
        data, parallelization=WRITE_THREADS, level=LEVEL,
        chunk_size=WRITE_CHUNK, layout="bgzf",
    )


_WRITERS = {
    "gzip": _write_gzip,
    "parallel_friendly": _write_parallel_friendly,
    "bgzf": _write_bgzf,
}


# -- read side ---------------------------------------------------------------

def _read(blob: bytes, *, detect_catalog: bool) -> bytes:
    with ParallelGzipReader(
        blob, parallelization=1, chunk_size=READ_CHUNK,
        detect_catalog=detect_catalog,
    ) as reader:
        return reader.read()


_READERS = {
    "catalog": lambda blob: _read(blob, detect_catalog=True),
    "marker": lambda blob: _read(blob, detect_catalog=False),
}


def _interleaved_best(tasks: dict, argument) -> dict:
    best = {name: float("inf") for name in tasks}
    for _ in range(REPS):
        for name, run in tasks.items():
            start = time.perf_counter()
            run(argument)
            best[name] = min(best[name], time.perf_counter() - start)
    return best


def _measure(name: str, data: bytes):
    write_best = _interleaved_best(_WRITERS, data)
    _results[(name, "write")] = {
        key: len(data) / seconds for key, seconds in write_best.items()
    }
    blob = _write_parallel_friendly(data)
    assert _READERS["catalog"](blob) == _READERS["marker"](blob) == data
    read_best = _interleaved_best(_READERS, blob)
    _results[(name, "read")] = {
        key: len(data) / seconds for key, seconds in read_best.items()
    }


def _load_trajectory() -> list:
    if not TRAJECTORY_PATH.exists():
        return []
    document = json.loads(TRAJECTORY_PATH.read_text())
    return document.get("trajectory", [])


def measure(reps: int = REPS) -> dict:
    """Fresh ``corpus/side`` series for the regression gate."""
    global REPS
    original_reps, REPS = REPS, reps
    try:
        _results.clear()
        for name, data in _corpora().items():
            _measure(name, data)
        return {
            f"{name}/{side}": {
                f"{key}_mb_s": round(rate / 1e6, 3)
                for key, rate in rates.items()
            }
            for (name, side), rates in _results.items()
        }
    finally:
        REPS = original_reps


def test_parallel_friendly(benchmark, reporter):
    corpora = _corpora()
    benchmark.pedantic(
        lambda: [_measure(name, data) for name, data in corpora.items()],
        rounds=1,
        iterations=1,
    )

    table = reporter("Parallel-friendly archives: write cost, marker-free "
                     "read speedup")
    widths = [8, 6, 13, 13, 13, 9]
    table.row("corpus", "side", "gzip/marker", "pf/catalog", "bgzf",
              "speedup", widths=widths)
    entry = {
        "series_keys": sorted(
            {f"{key}_mb_s" for rates in _results.values() for key in rates}
        ),
        "corpus_size": CORPUS_SIZE,
        "level": LEVEL,
        "reps": REPS,
        "write_threads": WRITE_THREADS,
        "write_chunk": WRITE_CHUNK,
        "read_chunk": READ_CHUNK,
        "results": {},
    }
    for name in corpora:
        write = _results[(name, "write")]
        read = _results[(name, "read")]
        table.row(
            name, "write", fmt_bw(write["gzip"]),
            fmt_bw(write["parallel_friendly"]), fmt_bw(write["bgzf"]),
            f"{write['parallel_friendly'] / write['gzip']:.2f}x",
            widths=widths,
        )
        table.row(
            name, "read", fmt_bw(read["marker"]), fmt_bw(read["catalog"]),
            "-", f"{read['catalog'] / read['marker']:.2f}x", widths=widths,
        )
        entry["results"][f"{name}/write"] = {
            f"{key}_mb_s": round(rate / 1e6, 3) for key, rate in write.items()
        }
        entry["results"][f"{name}/read"] = {
            **{f"{key}_mb_s": round(rate / 1e6, 3)
               for key, rate in read.items()},
            "catalog_vs_marker": round(read["catalog"] / read["marker"], 3),
        }
    table.add()
    table.add(f"{CORPUS_SIZE >> 20} MiB per corpus, level {LEVEL}, "
              f"{WRITE_THREADS} write threads, single-thread reads, "
              f"interleaved best-of-{REPS}")
    table.emit()

    document = {"schema": 1, "trajectory": _load_trajectory() + [entry]}
    TRAJECTORY_PATH.write_text(json.dumps(document, indent=2) + "\n")

    # Acceptance floor: marker-free reads must decisively beat the forced
    # marker path on the compressible corpora (committed results show far
    # more; 1.3x is the PR's stated floor).
    for name in ("base64", "silesia"):
        rates = _results[(name, "read")]
        assert rates["catalog"] >= 1.3 * rates["marker"], (name, rates)
    # Parallel write must not be materially slower than stock gzip — on
    # few-core containers zlib itself is the bound, so the catalogued
    # layout's close-time assembly may cost a few percent; the floor only
    # guards against a pathological writer regression.
    for name in corpora:
        rates = _results[(name, "write")]
        assert rates["parallel_friendly"] >= 0.85 * rates["gzip"], (name, rates)
