#!/usr/bin/env python3
"""Ratarmount-style random access into a .tar.gz (paper §1.3, §3.2).

The paper's motivating application: serving individual files out of a
gzip-compressed TAR archive without decompressing the whole thing per
access. ParallelGzipReader is file-like, so the stdlib ``tarfile`` module
can operate directly on top of it; the seek-point index makes member reads
near-constant-time, and the multi-stream prefetcher handles two readers
walking different members concurrently.

Run:  python examples/random_access_tar.py
"""

import io
import tarfile
import threading  # two concurrent clients below

from repro.cache import FetchMultiStream
from repro.datagen import build_tar, silesia_members
from repro.gz.writer import compress
from repro.index import GzipIndex
from repro.reader import ParallelGzipReader

# 1. Build archive.tar.gz with a few differently flavored members.
members = silesia_members(2 * 1024 * 1024, seed=3)
tar_bytes = build_tar(members)
archive = compress(tar_bytes, "gzip", level=6)
print(f"archive.tar.gz: {len(members)} members, "
      f"{len(tar_bytes):,} B tar -> {len(archive):,} B gz")

# 2. First open: list the archive and build the index as a side effect.
with ParallelGzipReader(archive, parallelization=4, chunk_size=128 * 1024) as reader:
    with tarfile.open(fileobj=reader, mode="r:") as tar:
        names = tar.getnames()
        print("members:", names)
    index_sink = io.BytesIO()
    reader.export_index(index_sink)
index = GzipIndex.load(index_sink.getvalue())

# 3. Indexed reopen: extract a single member without a full pass.
with ParallelGzipReader(
    archive,
    parallelization=4,
    index=index,
    strategy=FetchMultiStream(),
) as reader:
    with tarfile.open(fileobj=reader, mode="r:") as tar:
        extracted = tar.extractfile("mozilla.c").read()
        assert extracted == members["mozilla.c"]
        print(f"extracted mozilla.c: {len(extracted):,} bytes, verified")

    # 4. Concurrent access at two offsets (the ratarmount serving pattern).
    # tarfile is not thread-safe over a shared cursor, so each "client"
    # streams its member through the thread-safe positional read_at API.
    results = {}

    def serve_range(name, member_data):
        # Simulate a client streaming one file in 64 KiB requests via the
        # thread-safe positional API.
        offset = tar_bytes.find(member_data)
        out = bytearray()
        for start in range(0, len(member_data), 65536):
            out += reader.read_at(offset + start, min(65536, len(member_data) - start))
        results[name] = bytes(out)

    threads = [
        threading.Thread(target=serve_range, args=(name, members[name]))
        for name in ("dickens.txt", "x-ray.bin")
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for name in ("dickens.txt", "x-ray.bin"):
        assert results[name] == members[name]
    print("two concurrent streaming clients served correctly")
    stats = reader.statistics()
    print(f"prefetch cache hit rate: {stats['prefetch_cache'].hit_rate:.0%}")
