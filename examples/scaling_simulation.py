#!/usr/bin/env python3
"""Regenerate the paper's scaling curves from the calibrated simulator.

The repro.sim package models the cache-and-prefetch pipeline (worker pool,
sequential window propagation, prefetch depth, contention) with per-
component costs taken from the paper's own measurements. This example
prints the Figure 9 and Figure 10 families and the headline speedups —
the full benchmark harness lives in benchmarks/.

Run:  python examples/scaling_simulation.py
"""

from repro.sim import (
    CostModel,
    WORKLOADS,
    simulate_pugz,
    simulate_rapidgzip,
    simulate_single_threaded,
)

model = CostModel.from_paper()
GB = 1e9

print("Figure 9 — base64-encoded random data, weak scaling (GB/s)")
print(f"{'P':>4} {'rapidgzip':>10} {'rg-index':>10} {'pugz':>8} {'pugz-sync':>10}")
for cores in (1, 2, 4, 8, 16, 32, 64, 128):
    size = 512 * 1024 * 1024 * cores
    w = WORKLOADS["base64"]
    rapid = simulate_rapidgzip(cores, w, model, uncompressed_size=size)
    index = simulate_rapidgzip(cores, w, model, uncompressed_size=size,
                               with_index=True)
    pugz = simulate_pugz(cores, w, model, uncompressed_size=size,
                         synchronized=False)
    sync = simulate_pugz(cores, w, model,
                         uncompressed_size=128 * 1024 * 1024 * cores)
    print(f"{cores:>4} {rapid.bandwidth / GB:>10.2f} "
          f"{index.bandwidth / GB:>10.2f} {pugz.bandwidth / GB:>8.2f} "
          f"{sync.bandwidth / GB:>10.2f}")

gzip_bw = simulate_single_threaded(
    "gzip", WORKLOADS["base64"], model, uncompressed_size=1e9
).bandwidth
rapid128 = simulate_rapidgzip(
    128, WORKLOADS["base64"], model, uncompressed_size=512 * 1024**2 * 128
).bandwidth
print(f"\nspeedup over GNU gzip at 128 cores: {rapid128 / gzip_bw:.0f}x "
      "(paper: 55x)\n")

print("Figure 10 — Silesia-like corpus (markers persist -> Amdahl plateau)")
print(f"{'P':>4} {'rapidgzip':>10} {'rg-index':>10} {'serial frac':>12}")
for cores in (16, 32, 64, 96, 128):
    size = 424e6 * cores
    w = WORKLOADS["silesia"]
    rapid = simulate_rapidgzip(cores, w, model, uncompressed_size=size)
    index = simulate_rapidgzip(cores, w, model, uncompressed_size=size,
                               with_index=True)
    print(f"{cores:>4} {rapid.bandwidth / GB:>10.2f} "
          f"{index.bandwidth / GB:>10.2f} {rapid.serial_fraction:>11.0%}")

print("\nThe no-index curve flattens after ~64 cores as the serial window")
print("propagation + marker handling approach 100% of the makespan — the")
print("paper's §4.5 explanation, visible in the serial fraction column.")
