#!/usr/bin/env python3
"""Quickstart: parallel decompression and random access in 40 lines.

Creates a gzip file, decompresses it with the parallel reader, seeks into
the middle without decompressing everything before it twice, and exports a
seek-point index for instant random access next time.

Run:  python examples/quickstart.py
"""

import io

from repro.datagen import generate_base64
from repro.gz.writer import compress
from repro.index import GzipIndex
from repro.reader import ParallelGzipReader

# 1. Make a gzip file (any gzip file works — this one is base64 test data
#    compressed with a pigz-like layout, so it contains many Deflate blocks).
data = generate_base64(4 * 1024 * 1024, seed=7)
gz_blob = compress(data, "pigz")
print(f"input: {len(data):,} bytes -> {len(gz_blob):,} compressed "
      f"(ratio {len(data) / len(gz_blob):.3f})")

# 2. Parallel decompression: 4 worker threads, 256 KiB chunks.
with ParallelGzipReader(gz_blob, parallelization=4, chunk_size=256 * 1024) as reader:
    out = reader.read()
    assert out == data
    print(f"decompressed {len(out):,} bytes, "
          f"{reader.statistics()['chunks_decoded']} chunks, "
          f"mode={reader.statistics()['mode']}")

    # 3. Seek + read behaves like a regular file object.
    reader.seek(1_000_000)
    assert reader.read(80) == data[1_000_000:1_000_080]
    print("random access at offset 1,000,000: OK")

    # 4. Export the index built during decompression.
    index_sink = io.BytesIO()
    reader.export_index(index_sink)

# 5. Re-open with the index: decompression now delegates to zlib and
#    seeking anywhere is constant-time.
index = GzipIndex.load(index_sink.getvalue())
with ParallelGzipReader(gz_blob, parallelization=4, index=index) as reader:
    reader.seek(3_000_000)
    assert reader.read(80) == data[3_000_000:3_000_080]
    print(f"indexed reopen ({len(index)} seek points): "
          f"mode={reader.statistics()['mode']}, random access OK")
