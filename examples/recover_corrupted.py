#!/usr/bin/env python3
"""Salvaging data from a damaged gzip file (paper §1.3).

Block finding was originally a forensics technique; rapidgzip's fast finder
makes it practical. We destroy the head of an archive — including the gzip
header, which defeats every standard tool — then recover everything after
the damage. Bytes whose value depended on the destroyed 32 KiB window are
replaced by '?' and counted.

Run:  python examples/recover_corrupted.py
"""

from repro.datagen import generate_silesia_like
from repro.gz.writer import compress
from repro.recovery import recover_gzip

data = generate_silesia_like(2 * 1024 * 1024, seed=5)
blob = bytearray(compress(data, "gzip", level=6))
print(f"archive: {len(data):,} B -> {len(blob):,} B compressed")

# Disaster strikes: the first 4 KiB are overwritten (header included).
blob[:4096] = bytes(4096)
print("corrupted the first 4,096 bytes (gzip header destroyed)")

report = recover_gzip(bytes(blob))
print(f"recovery found {len(report.segments)} decodable segment(s):")
for segment in report.segments:
    kind = "clean" if segment.clean_start else "resynced"
    print(f"  bit offset {segment.start_bit:>12,}: {len(segment.data):>10,} "
          f"bytes ({kind}, {segment.unresolved} unresolved)")

recovered = report.data()
fraction = report.recovered_bytes / len(data)
print(f"recovered {report.recovered_bytes:,} / {len(data):,} bytes "
      f"({fraction:.1%}); {report.unresolved_bytes} placeholder bytes")

# Verify the recovered tail against the original.
tail = recovered[-100_000:]
assert tail == data[-100_000:], "recovered tail should match the original"
print("tail verification: last 100,000 bytes match the original exactly")
