#!/usr/bin/env python3
"""Bioinformatics pipeline over a gzip-compressed FASTQ file (paper §4.6).

FASTQ is the workload pugz was built for. This example streams a
FASTQ.gz through the parallel reader, computes per-read statistics on the
fly (record count, base composition, mean quality), then uses the index to
jump straight to a record range in the middle of the file — the access
pattern of an aligner resuming work.

Run:  python examples/fastq_pipeline.py
"""

import io
from collections import Counter

from repro.datagen import count_fastq_records, generate_fastq
from repro.gz.writer import compress
from repro.index import GzipIndex
from repro.reader import ParallelGzipReader

# 1. Create reads.fastq.gz (pigz-like layout, as in the paper's setup).
fastq = generate_fastq(3 * 1024 * 1024, seed=11)
blob = compress(fastq, "pigz")
print(f"reads.fastq.gz: {len(fastq):,} B -> {len(blob):,} B "
      f"(ratio {len(fastq) / len(blob):.2f})")

# 2. Stream through the parallel reader, processing 1 MiB at a time.
records = 0
bases = Counter()
quality_sum = 0
quality_count = 0
carry = b""
with ParallelGzipReader(blob, parallelization=4, chunk_size=128 * 1024) as reader:
    while True:
        piece = reader.read(1024 * 1024)
        if not piece:
            break
        buffer = carry + piece
        cut = buffer.rfind(b"\n") + 1  # only process whole lines
        carry = buffer[cut:]
        lines = buffer[:cut].split(b"\n")[:-1]
        for number, line in enumerate(lines):
            kind = number % 4
            if kind == 1:  # sequence line
                bases.update(line)
            elif kind == 3:  # quality line
                quality_sum += sum(line) - 33 * len(line)
                quality_count += len(line)
        records += len(lines) // 4
    index_sink = io.BytesIO()
    reader.export_index(index_sink)

total_bases = sum(bases[b] for b in b"ACGT")
print(f"records: {records:,} (generator says {count_fastq_records(fastq):,})")
print("base composition: " + ", ".join(
    f"{chr(b)}={bases[b] / total_bases:.1%}" for b in b"ACGT"))
print(f"mean quality: Q{quality_sum / quality_count:.1f}")

# 3. Indexed random access: re-read records around the 60% mark without
#    re-decompressing the first 60% of the file.
index = GzipIndex.load(index_sink.getvalue())
with ParallelGzipReader(blob, parallelization=2, index=index) as reader:
    offset = int(len(fastq) * 0.6)
    reader.seek(offset)
    window = reader.read(4096)
    first_record = window.find(b"\n@") + 1
    record = window[first_record:].split(b"\n", 4)[:4]
    print("record near 60% mark:")
    for line in record[:2]:
        print("   ", line[:60].decode("ascii", "replace"))
    print(f"   (decoded {reader.statistics()['chunks_decoded']} of "
          f"{len(index)} chunks for this access)")
